"""Command-line entry point over the experiment registry.

Every table/figure is a registered scenario whose parameters are spec
fields — there is no signature probing: any scenario takes any
``--set`` path its spec defines, and ``--seed``/``--epochs`` are sugar
for the two most common ones.

Examples::

    repro list
    repro list --json
    repro run fig1
    repro run table2 --epochs 16
    repro run serve --seed 7 --set policy.admission=backpressure
    repro run serve --set 'sweep.axes={"arrivals.rate_per_s": [2.0]}'
    repro run cluster --set jobs=4 --set policy=edf
    repro export serve --out artifacts/            # json + csv + txt
    repro export fig2 --spec-only > fig2.json      # the spec, no run
    repro run fig2 --spec fig2.json                # re-run it exactly
    repro trace serve                              # Chrome trace JSON
    repro run serve --set trace=true               # table + trace file
    repro sweep serve --backend=queue --db runs/q.db --workers 2
    repro worker runs/q.db                         # drain the queue
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import registry
from repro.api.spec import ScenarioSpec
from repro.errors import ReproError

EXPORT_FORMATS = ("json", "csv", "txt")


def _parse_set(pairs: "list[str]") -> dict:
    """``key=value`` pairs -> override mapping (values parse as JSON,
    falling back to the raw string, so ``--set training.model=6B`` and
    ``--set training.epochs=16`` both do what they look like)."""
    overrides = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"error: --set expects key=value, got {pair!r}"
            )
        try:
            overrides[key] = json.loads(value)
        except json.JSONDecodeError:
            overrides[key] = value
    return overrides


def _overrides(args: argparse.Namespace) -> dict:
    # Top-level assignment/admission/discipline shorthands expand to
    # their policy.* paths here, so --spec-only and sweep-axis pinning
    # both see the real dotted path.
    overrides = registry.expand_overrides(_parse_set(args.set))
    if args.epochs is not None:
        overrides.setdefault("training.epochs", args.epochs)
    if args.seed is not None:
        overrides.setdefault("seed", args.seed)
    return overrides


def _base_spec(args: argparse.Namespace) -> "ScenarioSpec | None":
    """Load --spec FILE: either a bare ScenarioSpec JSON (--spec-only)
    or a full export artifact, whose spec lives under "scenario"."""
    if args.spec is None:
        return None
    try:
        with open(args.spec) as handle:
            data = json.load(handle)
    except OSError as error:
        raise SystemExit(f"error: cannot read --spec file: {error}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"error: {args.spec} is not valid JSON: {error}")
    if isinstance(data, dict) and isinstance(data.get("scenario"), dict):
        data = data["scenario"]
    return ScenarioSpec.from_dict(data)


def _add_scenario_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("scenario", choices=registry.names(),
                        help="which registered scenario to use")
    parser.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="override a spec field by dotted path "
                             "(repeatable); values parse as JSON")
    parser.add_argument("--epochs", type=int, default=None,
                        help="shorthand for --set training.epochs=N")
    parser.add_argument("--seed", type=int, default=None,
                        help="shorthand for --set seed=N (every scenario "
                             "takes one)")
    parser.add_argument("--spec", metavar="FILE", default=None,
                        help="load the base ScenarioSpec from a JSON file "
                             "(e.g. one written by `repro export`) instead "
                             "of the scenario's default")


def _trace_point(scenario: ScenarioSpec) -> tuple:
    """Run the scenario's *first* sweep point with tracing forced on.

    Sweeps discard per-point traces (their rows must stay small and
    JSON-serializable for the determinism suite), so the CLI traces one
    representative point through a :class:`~repro.api.session.Session`.
    Returns ``(point_spec, TraceResult)``.
    """
    from repro.api.session import Session

    point = scenario.sweep_points()[0].override({"obs.trace": True})
    session = Session(point)
    session.run()
    return point, session.runner.trace_result


def _write_trace(scenario: ScenarioSpec, name: str, out_dir: str,
                 jsonl: bool = False) -> "list[str]":
    """Trace the scenario's first point and write the export file(s)."""
    import os

    point, trace = _trace_point(scenario)
    os.makedirs(out_dir, exist_ok=True)
    written = []
    chrome_path = os.path.join(out_dir, f"{name}_trace.json")
    trace.write_chrome(chrome_path)
    written.append(chrome_path)
    if jsonl:
        jsonl_path = os.path.join(out_dir, f"{name}_trace.jsonl")
        trace.write_jsonl(jsonl_path)
        written.append(jsonl_path)
    print(f"traced 1 point of {name!r}: {trace.span_count} events",
          file=sys.stderr)
    return written


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FreeRide reproduction: run registered scenarios "
                    "(the paper's tables/figures plus the serving "
                    "capacity sweep) on the simulated substrate.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list registered scenarios")
    list_parser.add_argument("--json", action="store_true",
                             help="machine-readable listing")

    run_parser = commands.add_parser(
        "run", help="run a scenario and print its table/figure")
    _add_scenario_options(run_parser)
    run_parser.add_argument("--export", metavar="DIR", default=None,
                            help="also write json/csv/txt artifacts here")

    trace_parser = commands.add_parser(
        "trace", help="run one point of a scenario with span tracing on "
                      "and write a Chrome trace-event JSON (open it in "
                      "Perfetto / chrome://tracing)")
    _add_scenario_options(trace_parser)
    trace_parser.add_argument("--out", metavar="DIR", default="artifacts",
                              help="trace directory (default: artifacts/)")
    trace_parser.add_argument("--jsonl", action="store_true",
                              help="also write the flat JSONL event log")

    export_parser = commands.add_parser(
        "export", help="run a scenario and write its artifacts")
    _add_scenario_options(export_parser)
    export_parser.add_argument("--out", metavar="DIR", default="artifacts",
                               help="artifact directory (default: "
                                    "artifacts/)")
    export_parser.add_argument("--format", choices=EXPORT_FORMATS + ("all",),
                               default="all",
                               help="which artifact(s) to write")
    export_parser.add_argument("--spec-only", action="store_true",
                               help="print the (overridden) spec as JSON "
                                    "and exit without running")

    sweep_parser = commands.add_parser(
        "sweep", help="run a scenario through a selectable sweep backend "
                      "(the queue backend enqueues into a durable SQLite "
                      "store that `repro worker` processes drain)")
    _add_scenario_options(sweep_parser)
    sweep_parser.add_argument("--backend", choices=("serial", "pool", "queue"),
                              default="pool",
                              help="sweep executor (default: pool)")
    sweep_parser.add_argument("--db", metavar="FILE",
                              default="artifacts/queue.db",
                              help="queue database path (queue backend; "
                                   "default: artifacts/queue.db)")
    sweep_parser.add_argument("--workers", type=int, default=0,
                              metavar="N",
                              help="local `repro worker` processes to spawn "
                                   "(queue backend; 0 = rely on workers you "
                                   "start yourself)")
    sweep_parser.add_argument("--poll", type=float, default=0.25,
                              metavar="SECONDS",
                              help="client poll interval (queue backend)")
    sweep_parser.add_argument("--lease-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="visibility timeout before a silent "
                                   "worker forfeits its point")
    sweep_parser.add_argument("--max-attempts", type=int, default=3,
                              metavar="N",
                              help="attempts per point before it is "
                                   "marked DEAD (default: 3)")
    sweep_parser.add_argument("--timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="give up waiting on the queue after "
                                   "this long")
    sweep_parser.add_argument("--export", metavar="DIR", default=None,
                              help="also write json/csv/txt artifacts here")

    worker_parser = commands.add_parser(
        "worker", help="drain sweep points from a queue database until "
                       "every point is terminal (run N of these in "
                       "parallel shells or machines)")
    worker_parser.add_argument("db", help="queue database path (the --db "
                                          "of a `repro sweep --backend="
                                          "queue` run)")
    worker_parser.add_argument("--id", default=None, metavar="WORKER_ID",
                               help="worker id recorded on leases "
                                    "(default: host-pid-nonce)")
    worker_parser.add_argument("--poll", type=float, default=0.5,
                               metavar="SECONDS",
                               help="idle poll interval (default: 0.5)")
    worker_parser.add_argument("--lease-timeout", type=float, default=None,
                               metavar="SECONDS",
                               help="override the sweep's visibility "
                                    "timeout")
    worker_parser.add_argument("--max-points", type=int, default=None,
                               metavar="N",
                               help="exit after completing N points")
    worker_parser.add_argument("--keep-alive", action="store_true",
                               help="keep polling after the store drains "
                                    "(serve future sweeps on the same db)")
    worker_parser.add_argument("--sweep-id", default=None,
                               help="only lease points of this sweep")

    fuzz_parser = commands.add_parser(
        "fuzz", help="draw seeded random scenarios, run each one, and "
                     "check every global invariant plus the equivalence "
                     "frames (pool/streaming/traced/calendar/roundtrip); "
                     "failures are shrunk to minimal repro specs")
    fuzz_parser.add_argument("--seed", type=int, default=0,
                             help="base seed; case i uses seed+i "
                                  "(default: 0)")
    fuzz_parser.add_argument("--count", type=int, default=50, metavar="N",
                             help="number of fuzz cases (default: 50)")
    fuzz_parser.add_argument("--kind", action="append", default=None,
                             choices=("batch", "serving", "cluster",
                                      "pipeline"),
                             help="restrict drawn scenario kinds "
                                  "(repeatable; default: all)")
    fuzz_parser.add_argument("--corpus", metavar="DIR",
                             default="artifacts/fuzz-corpus",
                             help="where shrunk failing specs are written "
                                  "(default: artifacts/fuzz-corpus)")
    fuzz_parser.add_argument("--frames", type=int, default=None,
                             metavar="N",
                             help="equivalence frames per case, rotated "
                                  "across cases (default: all applicable)")
    fuzz_parser.add_argument("--no-shrink", action="store_true",
                             help="report failures without minimizing "
                                  "them")

    args = parser.parse_args(argv)

    if args.command == "fuzz":
        from repro.fuzz import FUZZ_KINDS, fuzz_many

        def progress(index: int, case) -> None:
            if (index + 1) % 25 == 0:
                print(f"fuzz: {index + 1}/{args.count} cases...",
                      file=sys.stderr)

        try:
            report = fuzz_many(
                args.seed,
                args.count,
                kinds=tuple(args.kind) if args.kind else FUZZ_KINDS,
                corpus_dir=args.corpus,
                frame_budget=args.frames,
                shrink_failures=not args.no_shrink,
                progress=progress,
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(report.render())
        return 0 if report.ok else 1

    if args.command == "worker":
        from repro.distrib import Worker

        try:
            worker = Worker(
                args.db,
                worker_id=args.id,
                poll_s=args.poll,
                lease_timeout_s=args.lease_timeout,
                max_points=args.max_points,
                keep_alive=args.keep_alive,
                sweep_id=args.sweep_id,
            )
            stats = worker.run()
        except KeyboardInterrupt:
            print("worker: interrupted", file=sys.stderr)
            return 130
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"worker {worker.worker_id}: {stats.summary()}",
              file=sys.stderr)
        return 0

    if args.command == "list":
        if args.json:
            print(json.dumps(registry.describe(), indent=2))
        else:
            for entry in registry.describe():
                print(f"{entry['name']:<10s} [{entry['kind']}] "
                      f"{entry['title']}")
        return 0

    try:
        base = _base_spec(args)
        overrides = _overrides(args)
        if args.command == "export" and args.spec_only:
            spec = base if base is not None else registry.get(args.scenario).spec()
            print(spec.override(overrides).to_json())
            return 0
        if args.command == "trace":
            scenario = registry.resolve_scenario(
                args.scenario, overrides=overrides, spec=base
            )
            for path in _write_trace(scenario, args.scenario, args.out,
                                     jsonl=args.jsonl):
                print(path)
            return 0
        if args.command == "sweep":
            from repro.distrib import DEFAULT_LEASE_TIMEOUT_S, SweepBackend

            backend = SweepBackend(
                backend=args.backend,
                db=args.db,
                workers=args.workers,
                poll_s=args.poll,
                lease_timeout_s=(args.lease_timeout
                                 if args.lease_timeout is not None
                                 else DEFAULT_LEASE_TIMEOUT_S),
                max_attempts=args.max_attempts,
                timeout_s=args.timeout,
            )
            result = registry.run(args.scenario, overrides=overrides,
                                  spec=base, backend=backend)
        else:
            result = registry.run(args.scenario, overrides=overrides,
                                  spec=base)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.command in ("run", "sweep"):
        print(result.render())
        if args.export:
            for path in result.write_artifacts(args.export):
                print(f"wrote {path}", file=sys.stderr)
        if result.scenario.obs.trace:
            # A sweep's per-point traces are discarded; honor the
            # request by also tracing the first point to a file.
            try:
                paths = _write_trace(
                    result.scenario, args.scenario,
                    args.export if args.export else "artifacts",
                )
            except ReproError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            for path in paths:
                print(f"wrote {path}", file=sys.stderr)
        return 0

    formats = EXPORT_FORMATS if args.format == "all" else (args.format,)
    written = result.write_artifacts(args.out, formats=formats)
    if not written:
        # Only reachable for an explicitly requested single format that
        # the experiment cannot produce (csv without tabular rows).
        print(f"error: {args.scenario} has no tabular rows; nothing to "
              f"write for --format {args.format}", file=sys.stderr)
        return 2
    for path in written:
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
