"""Weighted-fair dispatch over tenant backlogs: stride scheduling.

The serving frontend's FIFO/EDF disciplines are tenant-blind: whichever
tenant keeps the deepest backlog gets the most bubbles. The
:class:`StrideDiscipline` instead treats the admission queue as one
backlog *per tenant* and serves tenants in proportion to their declared
weights — classic stride scheduling (Waldspurger & Weihl, 1995):

* each tenant has ``stride = 1 / weight``; a *pass* counter advances by
  one stride per request actually dispatched;
* every dispatch goes to the backlogged tenant with the smallest pass,
  so over any interval where a set of tenants stays backlogged, their
  service counts converge to the exact weight ratio;
* the queue's *virtual time* is the pass value of the latest dispatch —
  the minimum pass among backlogged tenants, since that is who gets
  picked — and a dispatched tenant's pass is clamped up to it before
  charging. For continuously backlogged tenants the clamp is a no-op
  (their passes already sit at or above the minimum); a tenant that sat
  idle while its pass fell behind gets exactly one catch-up dispatch
  and then competes at the current virtual time — idle tenants bank no
  credit and cannot monopolize the queue on return;
* *within* a tenant, requests dispatch in EDF order (arrival order among
  equal deadlines), so SLO awareness survives inside each lane.

Unlike the stateless disciplines in :mod:`repro.serving.slo`, a stride
scheduler carries per-run state, so it is instantiated per run (see
:func:`repro.serving.frontend.make_discipline`) and charged only for
requests that actually reach a worker: the frontend calls
:meth:`StrideDiscipline.on_dispatch` after a successful submission, so a
pick that gets deferred for lack of bubble memory costs its tenant
nothing.
"""

from __future__ import annotations

import typing

from repro.tenancy.tenants import TenantShare, as_shares

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.frontend import RequestRecord


class StrideDiscipline:
    """Stride scheduling across tenant backlogs; EDF within a tenant."""

    name = "weighted"

    def __init__(self, tenants: "typing.Iterable[TenantShare]" = ()):
        self._stride: "dict[str, float]" = {}
        self._pass: "dict[str, float]" = {}
        #: tie-break order: declaration order, then first-seen order
        self._order: "dict[str, int]" = {}
        #: pass of the most recent dispatch — the queue's virtual time
        self._vtime = 0.0
        #: observability seam; the frontend installs one when tracing
        self._tracer = None
        for share in as_shares(tenants):
            self._register(share.name, share.weight)

    def attach_tracer(self, tracer) -> None:
        """Emit a per-pick instant event on each charged dispatch."""
        self._tracer = tracer

    def _register(self, tenant: str, weight: float) -> None:
        self._stride[tenant] = 1.0 / weight
        self._pass[tenant] = self._vtime + self._stride[tenant]
        self._order[tenant] = len(self._order)

    def _backlogged(self, queue: "typing.Sequence[RequestRecord]") -> "set[str]":
        """The tenants with queued work (undeclared ones register at
        weight 1, in first-seen order)."""
        seen: "set[str]" = set()
        for record in queue:
            tenant = record.request.tenant
            if tenant not in self._stride:
                self._register(tenant, 1.0)
            seen.add(tenant)
        return seen

    def __call__(self, queue: "typing.Sequence[RequestRecord]",
                 now: float) -> int:
        tenant = min(
            self._backlogged(queue),
            key=lambda name: (self._pass[name], self._order[name]),
        )
        return min(
            (index for index, record in enumerate(queue)
             if record.request.tenant == tenant),
            key=lambda index: (queue[index].effective_deadline,
                               queue[index].request.request_id),
        )

    def on_dispatch(self, record: "RequestRecord") -> None:
        """Charge one stride — called only for requests that actually
        reached a worker, so a pick deferred for lack of memory is free."""
        tenant = record.request.tenant
        if tenant not in self._stride:
            self._register(tenant, 1.0)
        # Clamp to the virtual time: a no-op for continuously backlogged
        # tenants, the no-banked-credit rule for returning idle ones.
        self._vtime = max(self._pass[tenant], self._vtime)
        self._pass[tenant] = self._vtime + self._stride[tenant]
        if self._tracer is not None:
            self._tracer.instant(
                "dispatch", record.assigned_at, cat="scheduler.stride",
                track=("scheduler", tenant or "default"),
                args={"id": record.request.request_id,
                      "pass": self._pass[tenant], "vtime": self._vtime},
            )


#: per-name factories for the stateful, tenant-aware disciplines — the
#: counterpart of :data:`repro.serving.slo.NAMED_DISCIPLINES` for
#: disciplines that need a fresh instance (and the tenant set) per run
NAMED_FAIR_DISCIPLINES: "dict[str, typing.Callable[..., StrideDiscipline]]" = {
    "weighted": StrideDiscipline,
}
