"""The runtime tenant descriptor the fairness mechanisms share.

A :class:`TenantShare` is the mechanism-facing view of one tenant: its
name (the key every request carries in ``TaskRequest.tenant``), its
weighted-fair share, and its admission token-bucket budget. The
declarative layer (:class:`repro.api.spec.TenantSpec`) produces these;
the admission policy (:mod:`repro.tenancy.admission`), the dispatch
scheduler (:mod:`repro.tenancy.scheduler`), and the fairness metrics
(:mod:`repro.metrics.fairness`) consume them — none of which need the
full spec vocabulary, so the serving layer stays below the api layer.
"""

from __future__ import annotations

import dataclasses
import typing

#: admission budget applied to tenants nobody declared (lazily created
#: buckets / weight-1 dispatch lanes) — matches the plain ``token_bucket``
#: policy's standard settings
DEFAULT_RATE_PER_S = 1.5
DEFAULT_BURST = 4.0


@dataclasses.dataclass(frozen=True)
class TenantShare:
    """One tenant, as the fairness mechanisms see it."""

    name: str
    #: weighted-fair dispatch share (relative; 2.0 gets twice the service
    #: of 1.0 whenever both are backlogged)
    weight: float = 1.0
    #: per-tenant admission token bucket: sustained refill rate ...
    rate_per_s: float = DEFAULT_RATE_PER_S
    #: ... and burst allowance (the bucket's capacity)
    burst: float = DEFAULT_BURST

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(
                f"tenant {self.name!r} weight must be positive, "
                f"got {self.weight}"
            )
        if self.rate_per_s <= 0:
            raise ValueError(
                f"tenant {self.name!r} refill rate must be positive, "
                f"got {self.rate_per_s}"
            )
        if self.burst < 1:
            raise ValueError(
                f"tenant {self.name!r} burst must allow at least one "
                f"token, got {self.burst}"
            )


def as_shares(tenants: "typing.Iterable[TenantShare]") -> "tuple[TenantShare, ...]":
    """Validate a tenant set: names must be unique (they key everything)."""
    shares = tuple(tenants)
    seen: set[str] = set()
    for share in shares:
        if share.name in seen:
            raise ValueError(f"duplicate tenant name {share.name!r}")
        seen.add(share.name)
    return shares
