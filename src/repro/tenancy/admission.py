"""Per-tenant admission: one token bucket per tenant.

The serving layer's plain :class:`~repro.serving.frontend.TokenBucket`
rate-limits the *aggregate* stream, so one aggressive tenant can drain
the budget for everyone. :class:`PerTenantTokenBucket` gives each tenant
its own independently refilled bucket — a tenant that floods the service
only empties its own bucket, and every other tenant's admission decisions
are exactly what they would have been with the aggressor absent (the
isolation invariant ``tests/tenancy/test_fairness_invariants.py`` pins).

Requests are attributed by ``TaskRequest.tenant``; requests from tenants
nobody declared get a lazily created bucket at the default budget, so
untenanted traffic degrades to plain per-source token-bucket admission
rather than failing.
"""

from __future__ import annotations

import typing

from repro.serving.frontend import AdmissionPolicy, TokenBucket
from repro.tenancy.tenants import (
    DEFAULT_BURST,
    DEFAULT_RATE_PER_S,
    TenantShare,
    as_shares,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.arrivals import TaskRequest


class PerTenantTokenBucket(AdmissionPolicy):
    """One independently refilled token bucket per tenant."""

    name = "per_tenant_token_bucket"

    def __init__(self, tenants: "typing.Iterable[TenantShare]" = ()):
        self.tenants = as_shares(tenants)
        self.buckets: "dict[str, TokenBucket]" = {
            share.name: TokenBucket(share.rate_per_s, share.burst)
            for share in self.tenants
        }

    def bucket_for(self, tenant: str) -> TokenBucket:
        """The tenant's bucket, lazily created for undeclared tenants."""
        bucket = self.buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(DEFAULT_RATE_PER_S, DEFAULT_BURST)
            self.buckets[tenant] = bucket
        return bucket

    def admit(self, now: float, request: "TaskRequest",
              queue_length: int) -> "tuple[bool, str | None]":
        bucket = self.bucket_for(request.tenant)
        bucket.refill(now)
        if bucket.take():
            return True, None
        return False, f"tenant {request.tenant!r} token bucket empty"
