"""Multi-tenant traffic: a superposition of per-tenant arrival streams.

Each tenant offers its own open-loop stream (its own arrival process,
rate, and workload mix, independently seeded); the service sees the
merged stream. :class:`TenantArrivals` generates each tenant's requests,
tags them with the tenant name, and renumbers ``request_id`` in merged
arrival order — preserving the frontend's invariant that request ids are
assigned in arrival order (deferred-dispatch requeueing and FIFO/EDF
tie-breaks rely on it).

Determinism matches the single-stream processes: every tenant's stream
derives from its own explicit seed, ties across tenants break by tenant
declaration order, and ``generate`` is idempotent.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.serving.arrivals import ArrivalProcess, TaskRequest


class TenantArrivals(ArrivalProcess):
    """Merge per-tenant :class:`ArrivalProcess` streams into one."""

    def __init__(self, streams: "typing.Sequence[tuple[str, ArrivalProcess]]"):
        if not streams:
            raise ValueError("need at least one (tenant, arrivals) stream")
        names = [name for name, _process in streams]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.streams = tuple(streams)

    def generate(self, horizon_s: float) -> "list[TaskRequest]":
        if horizon_s <= 0:
            return []
        merged: "list[tuple[float, int, int, str, TaskRequest]]" = []
        for order, (name, process) in enumerate(self.streams):
            for request in process.generate(horizon_s):
                merged.append(
                    (request.arrival_s, order, request.request_id, name,
                     request)
                )
        # Time first; simultaneous arrivals break by tenant declaration
        # order, then by the tenant's own stream order — fully determined.
        merged.sort(key=lambda entry: entry[:3])
        return [
            dataclasses.replace(request, request_id=index, tenant=name)
            for index, (_arrival, _order, _id, name, request)
            in enumerate(merged)
        ]

    def arrival_times(self, horizon_s: float) -> "list[float]":
        return [request.arrival_s for request in self.generate(horizon_s)]
