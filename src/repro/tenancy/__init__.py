"""Multi-tenant fairness over the shared serving queue.

PR 4 put many producers behind one shared placement loop; this subsystem
makes them *tenants*: named traffic sources with declared weights and
admission budgets, isolated from each other and served in proportion to
their shares. Three mechanisms, all riding the existing serving seams:

* :mod:`repro.tenancy.admission` — per-tenant token buckets on the
  admission seam (a flooding tenant drains only its own bucket);
* :mod:`repro.tenancy.scheduler` — stride-scheduled weighted-fair
  dispatch over tenant backlogs (the ``"weighted"`` discipline), EDF
  within each tenant's lane;
* :mod:`repro.tenancy.arrivals` — the merged open-loop stream of every
  tenant's own arrival process, tenant-tagged and renumbered in arrival
  order.

Fairness *accounting* (per-tenant goodput/latency, Jain's index,
weighted-share error) lives in :mod:`repro.metrics.fairness`; the
declarative surface is :class:`repro.api.spec.TenantSpec` plus the
``tenants`` field of a serving/cluster scenario; the registered
``fairness`` experiment sweeps tenant sets x dispatch into the
per-tenant fairness table (``repro run fairness --set tenants=4``).

The whole stack works identically over a single-job ``FreeRide`` and an
N-job ``Cluster`` because it only touches the shared ``SideTaskPool``
submission surface.
"""

from repro.tenancy.admission import PerTenantTokenBucket
from repro.tenancy.arrivals import TenantArrivals
from repro.tenancy.scheduler import NAMED_FAIR_DISCIPLINES, StrideDiscipline
from repro.tenancy.tenants import TenantShare, as_shares

__all__ = [
    "NAMED_FAIR_DISCIPLINES",
    "PerTenantTokenBucket",
    "StrideDiscipline",
    "TenantArrivals",
    "TenantShare",
    "as_shares",
]
