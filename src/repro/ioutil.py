"""Crash-safe file writes.

Every artifact writer in the repo (registry JSON/CSV/txt export, trace
export) goes through :func:`atomic_write_text`: the content lands in a
temp file in the destination directory, is fsynced, and is renamed into
place with ``os.replace`` — so a killed process can never leave a
truncated artifact behind, only the old file or the complete new one.
The queue store needs the same guarantee and gets it from SQLite's
journal; this module covers the plain-text artifacts.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_text(path: "str | os.PathLike", content: str) -> None:
    """Write ``content`` to ``path`` all-or-nothing.

    The temp file lives next to the destination (``os.replace`` must not
    cross filesystems) and is removed on any failure, so interrupted
    writes leave no debris.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
