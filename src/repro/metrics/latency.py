"""Latency and goodput accounting for the online serving layer.

Two interchangeable accumulators share one surface:

* :class:`LatencyStats` (default) keeps every sample in a sorted list —
  exact quantiles, O(n) memory, the right tool at serving-experiment
  scale of hundreds to a few thousand requests.
* :class:`StreamingLatencyStats` (``metrics.mode = streaming``) keeps
  five P² markers per tracked quantile — O(1) memory at any scale, the
  right tool for 10^6–10^7-request runs. The P² estimates are
  deterministic (no randomness, byte-identical across serial/pool runs)
  but approximate: on the repo's 10^4-request reference distributions
  the tracked p50/p95/p99 land within **5% relative error** of the
  exact path (pinned by tests/serving/test_streaming_mode.py); untracked
  quantiles raise rather than silently extrapolate.

:func:`serving_metrics` folds a run's request records into the capacity
numbers the `serve` experiment tabulates: rejection rate, p50/p95/p99
queueing and completion latency, throughput, and goodput (SLO-met
completions per second — the serving analogue of the paper's useful-work
throughput). :class:`ServingAccumulator` is the same fold exposed
one-record-at-a-time, so the frontend can account for each request the
moment it reaches a terminal state and then *drop* the record — the
constant-memory half of the streaming mode.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.frontend import RequestRecord


def _interpolated_quantile(samples: "typing.Sequence[float]",
                           q: float) -> float:
    """Linear-interpolated quantile of a sorted sample list."""
    position = q * (len(samples) - 1)
    low = int(position)
    high = min(low + 1, len(samples) - 1)
    fraction = position - low
    return samples[low] * (1.0 - fraction) + samples[high] * fraction


class LatencyStats:
    """Streaming exact-quantile accumulator over latency samples."""

    def __init__(self):
        self._samples: list[float] = []
        self._total = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency cannot be negative, got {value}")
        bisect.insort(self._samples, value)
        self._total += value

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return self._total / len(self._samples) if self._samples else 0.0

    @property
    def max(self) -> float:
        return self._samples[-1] if self._samples else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile, 0 <= q <= 1 (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        return _interpolated_quantile(self._samples, q)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> dict:
        """Plain-data digest (JSON-safe, used by the determinism tests)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


class P2Quantile:
    """One P² (Jain & Chlamtac 1985) marker set: a single quantile in
    O(1) memory.

    Five markers track the min, the max, the target quantile, and the
    two mid-quantiles; each observation shifts marker positions and
    adjusts heights by a piecewise-parabolic fit. Entirely
    deterministic — the estimate is a pure function of the observation
    sequence — and exact while fewer than five samples have arrived.
    """

    __slots__ = ("q", "_n", "_heights", "_positions", "_increments")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"tracked quantile must be in (0, 1), got {q}")
        self.q = q
        self._n = 0
        self._heights: list[float] = []
        self._positions = [0, 1, 2, 3, 4]
        self._increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def observe(self, value: float) -> None:
        # This runs once per tracked quantile per request in streaming
        # runs — the scale ladder's metrics hot path. Desired marker
        # positions use the closed form ``(count - 1) * increment``
        # instead of an incremented float, which is both cheaper and
        # free of accumulated rounding.
        n = self._n
        self._n = n + 1
        heights = self._heights
        if n < 5:
            bisect.insort(heights, value)
            return
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        if cell < 1:
            positions[1] += 1
        if cell < 2:
            positions[2] += 1
        if cell < 3:
            positions[3] += 1
        positions[4] += 1
        increments = self._increments
        for index in (1, 2, 3):
            position = positions[index]
            drift = n * increments[index] - position
            if drift >= 1.0:
                if positions[index + 1] - position > 1:
                    adjusted = self._parabolic(index, 1)
                    if not heights[index - 1] < adjusted < heights[index + 1]:
                        adjusted = self._linear(index, 1)
                    heights[index] = adjusted
                    positions[index] = position + 1
            elif drift <= -1.0:
                if positions[index - 1] - position < -1:
                    adjusted = self._parabolic(index, -1)
                    if not heights[index - 1] < adjusted < heights[index + 1]:
                        adjusted = self._linear(index, -1)
                    heights[index] = adjusted
                    positions[index] = position - 1

    def _parabolic(self, i: int, d: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + d * (h[i + d] - h[i]) / (n[i + d] - n[i])

    @property
    def value(self) -> float:
        """Current estimate (exact below five samples, 0.0 when empty)."""
        heights = self._heights
        if not heights:
            return 0.0
        if len(heights) < 5:
            return _interpolated_quantile(heights, self.q)
        return heights[2]


#: the quantile grid the streaming sketch tracks — exactly the ones
#: :class:`ServingMetrics` consumers read
TRACKED_QUANTILES = (0.50, 0.95, 0.99)


class StreamingLatencyStats:
    """Constant-memory :class:`LatencyStats` stand-in over P² sketches.

    Tracks count/mean/max exactly and the :data:`TRACKED_QUANTILES`
    approximately (documented bound: see module doc). ``quantile`` also
    answers q=0 (exact min) and q=1 (exact max); any other untracked
    quantile raises ``ValueError`` instead of guessing.
    """

    def __init__(self,
                 quantiles: "typing.Sequence[float]" = TRACKED_QUANTILES):
        self._sketches = {q: P2Quantile(q) for q in quantiles}
        self._sketch_seq = tuple(self._sketches.values())
        self._count = 0
        self._total = 0.0
        self._min = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency cannot be negative, got {value}")
        if self._count == 0 or value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._count += 1
        self._total += value
        for sketch in self._sketch_seq:
            sketch.observe(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        sketch = self._sketches.get(q)
        if sketch is None:
            raise ValueError(
                f"streaming stats only track quantiles "
                f"{sorted(self._sketches)}, got {q}")
        return sketch.value

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> dict:
        """Same shape as :meth:`LatencyStats.summary`."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@dataclasses.dataclass
class ServingMetrics:
    """Aggregate serving statistics over one run's request records."""

    #: requests that arrived while the service was open
    offered: int
    admitted: int
    #: turned away at admission (policy or bounded queue)
    rejected: int
    #: admitted and handed to a worker before close
    assigned: int
    #: finished their full job before close
    completed: int
    #: completed within their deadline (best effort counts on completion)
    slo_met: int
    #: ended in an explicit failure outcome ("failed" or "exhausted") —
    #: the worker died mid-service and retries, if any, ran out
    failed: int
    #: admitted but never completed (still queued/running at close)
    unserved: int
    #: open-service duration the rates are normalized by
    duration_s: float
    #: arrival -> assignment, for assigned requests (a
    #: :class:`StreamingLatencyStats` in streaming metrics mode)
    queueing: LatencyStats
    #: arrival -> completion, for completed requests (ditto)
    completion: LatencyStats

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def throughput_rps(self) -> float:
        """Completions per second of open service."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        """SLO-met completions per second — the capacity number."""
        return self.slo_met / self.duration_s if self.duration_s > 0 else 0.0


class ServingAccumulator:
    """One-record-at-a-time fold behind :func:`serving_metrics`.

    The streaming metrics mode feeds each request record into an
    accumulator the moment it reaches a terminal state (rejected,
    completed, failed, exhausted, or leftover at close) and then drops
    the record — so a 10^7-request run needs memory for live requests
    only, never the whole history. ``streaming=True`` swaps the exact
    sorted-list quantiles for P² sketches; the counter semantics are
    identical in both flavors (and identical to the classic
    whole-records fold, which is now implemented on top of this).
    """

    def __init__(self, streaming: bool = False):
        stats = StreamingLatencyStats if streaming else LatencyStats
        self.streaming = streaming
        self.queueing = stats()
        self.completion = stats()
        self.offered = self.admitted = self.rejected = self.assigned = 0
        self.completed = self.slo_met = self.failed = self.unserved = 0
        #: resilience-layer tallies (retries = extra attempts beyond the
        #: first; failed/exhausted split the terminal failure outcomes)
        self.retries = 0
        self.failed_requests = 0
        self.exhausted_requests = 0

    def add(self, record: "RequestRecord") -> None:
        """Fold one *terminal* request record into the tallies."""
        # The resilience ledger counts retry attempts and failure
        # outcomes over *all* records, offered or not — mirror that
        # before the open-load gate below.
        self.retries += max(0, record.attempts - 1)
        if record.outcome == "failed":
            self.failed_requests += 1
        elif record.outcome == "exhausted":
            self.exhausted_requests += 1
        if not record.offered:
            return  # arrived after close: never part of the open load
        self.offered += 1
        if record.rejected_at is not None:
            self.rejected += 1
            return
        self.admitted += 1
        arrival = record.request.arrival_s
        if record.assigned_at is not None:
            self.assigned += 1
            self.queueing.observe(record.assigned_at - arrival)
        if record.completed_at is not None:
            self.completed += 1
            self.completion.observe(record.completed_at - arrival)
            if record.met_slo:
                self.slo_met += 1
        elif record.outcome in ("failed", "exhausted"):
            self.failed += 1
        else:
            self.unserved += 1

    def metrics(self, duration_s: float) -> ServingMetrics:
        return ServingMetrics(
            offered=self.offered,
            admitted=self.admitted,
            rejected=self.rejected,
            assigned=self.assigned,
            completed=self.completed,
            slo_met=self.slo_met,
            failed=self.failed,
            unserved=self.unserved,
            duration_s=duration_s,
            queueing=self.queueing,
            completion=self.completion,
        )


def serving_metrics(records: "typing.Iterable[RequestRecord]",
                    duration_s: float) -> ServingMetrics:
    """Fold request lifecycle records into aggregate serving metrics."""
    accumulator = ServingAccumulator()
    for record in records:
        accumulator.add(record)
    return accumulator.metrics(duration_s)
