"""Latency and goodput accounting for the online serving layer.

:class:`LatencyStats` is a streaming accumulator: observations arrive one
at a time (the frontend records them as requests progress) and quantiles
are readable at any point. Samples are kept in a sorted list via binary-
search insertion (the search is O(log n); the list shift makes each
insert O(n), trivial at serving-experiment scale of hundreds to a few
thousand requests) — exact quantiles, simpler than an approximate
sketch, and byte-for-byte deterministic. Swap in a quantile sketch if
request streams ever grow by orders of magnitude.

:func:`serving_metrics` folds a run's request records into the capacity
numbers the `serve` experiment tabulates: rejection rate, p50/p95/p99
queueing and completion latency, throughput, and goodput (SLO-met
completions per second — the serving analogue of the paper's useful-work
throughput).
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.frontend import RequestRecord


class LatencyStats:
    """Streaming exact-quantile accumulator over latency samples."""

    def __init__(self):
        self._samples: list[float] = []
        self._total = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency cannot be negative, got {value}")
        bisect.insort(self._samples, value)
        self._total += value

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return self._total / len(self._samples) if self._samples else 0.0

    @property
    def max(self) -> float:
        return self._samples[-1] if self._samples else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile, 0 <= q <= 1 (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        samples = self._samples
        if not samples:
            return 0.0
        position = q * (len(samples) - 1)
        low = int(position)
        high = min(low + 1, len(samples) - 1)
        fraction = position - low
        return samples[low] * (1.0 - fraction) + samples[high] * fraction

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> dict:
        """Plain-data digest (JSON-safe, used by the determinism tests)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@dataclasses.dataclass
class ServingMetrics:
    """Aggregate serving statistics over one run's request records."""

    #: requests that arrived while the service was open
    offered: int
    admitted: int
    #: turned away at admission (policy or bounded queue)
    rejected: int
    #: admitted and handed to a worker before close
    assigned: int
    #: finished their full job before close
    completed: int
    #: completed within their deadline (best effort counts on completion)
    slo_met: int
    #: ended in an explicit failure outcome ("failed" or "exhausted") —
    #: the worker died mid-service and retries, if any, ran out
    failed: int
    #: admitted but never completed (still queued/running at close)
    unserved: int
    #: open-service duration the rates are normalized by
    duration_s: float
    #: arrival -> assignment, for assigned requests
    queueing: LatencyStats
    #: arrival -> completion, for completed requests
    completion: LatencyStats

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def throughput_rps(self) -> float:
        """Completions per second of open service."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        """SLO-met completions per second — the capacity number."""
        return self.slo_met / self.duration_s if self.duration_s > 0 else 0.0


def serving_metrics(records: "typing.Iterable[RequestRecord]",
                    duration_s: float) -> ServingMetrics:
    """Fold request lifecycle records into aggregate serving metrics."""
    offered = admitted = rejected = assigned = 0
    completed = slo_met = failed = unserved = 0
    queueing = LatencyStats()
    completion = LatencyStats()
    for record in records:
        if not record.offered:
            continue  # arrived after close: never part of the open load
        offered += 1
        if record.rejected_at is not None:
            rejected += 1
            continue
        admitted += 1
        arrival = record.request.arrival_s
        if record.assigned_at is not None:
            assigned += 1
            queueing.observe(record.assigned_at - arrival)
        if record.completed_at is not None:
            completed += 1
            completion.observe(record.completed_at - arrival)
            if record.met_slo:
                slo_met += 1
        elif getattr(record, "outcome", None) in ("failed", "exhausted"):
            failed += 1
        else:
            unserved += 1
    return ServingMetrics(
        offered=offered,
        admitted=admitted,
        rejected=rejected,
        assigned=assigned,
        completed=completed,
        slo_met=slo_met,
        failed=failed,
        unserved=unserved,
        duration_s=duration_s,
        queueing=queueing,
        completion=completion,
    )
