"""Bubble-time breakdown (paper Figure 9).

Splits the total bubble time of a FreeRide run into four buckets:

* ``no_task_oom`` — bubbles on GPUs whose worker received no side task
  because the bubbles' available memory was too small (VGG19 and Image on
  stages 0-1);
* ``running`` — time side-task steps actually executed;
* ``freeride_runtime`` — interface overhead: per-step transition checks,
  per-bubble resume latency, init transfers, and manager/RPC latency;
* ``insufficient_time`` — bubble tails the program-directed limit left
  idle because the next step would not have fit.
"""

from __future__ import annotations

import dataclasses

from repro.core.middleware import FreeRideResult


@dataclasses.dataclass(frozen=True)
class BubbleBreakdown:
    """Fractions of total bubble time (sum <= 1; remainder is runtime)."""

    total_bubble_s: float
    running_s: float
    freeride_runtime_s: float
    insufficient_s: float
    no_task_oom_s: float

    def fractions(self) -> dict[str, float]:
        if self.total_bubble_s <= 0:
            return {
                "running": 0.0,
                "freeride_runtime": 0.0,
                "insufficient_time": 0.0,
                "no_task_oom": 0.0,
            }
        return {
            "running": self.running_s / self.total_bubble_s,
            "freeride_runtime": self.freeride_runtime_s / self.total_bubble_s,
            "insufficient_time": self.insufficient_s / self.total_bubble_s,
            "no_task_oom": self.no_task_oom_s / self.total_bubble_s,
        }


def bubble_breakdown(result: FreeRideResult) -> BubbleBreakdown:
    """Compute the Figure-9 buckets from a FreeRide run."""
    trace = result.training.trace
    stages_with_tasks = {report.stage for report in result.tasks}
    total = 0.0
    oom = 0.0
    for stage in range(trace.num_stages):
        stage_bubble = sum(
            bubble.duration for bubble in trace.bubbles_of(stage=stage)
        )
        total += stage_bubble
        if stage not in stages_with_tasks:
            oom += stage_bubble
    running = sum(report.running_s for report in result.tasks)
    explicit_overhead = sum(
        report.overhead_s + report.init_s for report in result.tasks
    )
    insufficient = sum(report.insufficient_s for report in result.tasks)
    # Whatever bubble time on task-bearing stages is neither running nor
    # insufficient nor explicitly counted is manager/RPC latency — charge
    # it to the runtime bucket, as the paper does.
    unaccounted = max(
        0.0, total - oom - running - insufficient - explicit_overhead
    )
    return BubbleBreakdown(
        total_bubble_s=total,
        running_s=min(running, total),
        freeride_runtime_s=explicit_overhead + unaccounted,
        insufficient_s=insufficient,
        no_task_oom_s=oom,
    )
