"""Degradation metrics: what failure actually cost a run.

:func:`resilience_metrics` folds three ledgers into one digest:

* **worker crash logs** — crash/restart counts, mean recovery time, and
  worker availability (fraction of worker-seconds the pool was up);
* **runtime recovery accounting** — preemptions, restores, checkpoints
  and their overhead, wasted work (steps rolled back plus re-run step
  time), injected step failures;
* **request records** — retries spent, and requests that ended in an
  explicit "failed"/"exhausted" outcome.

Goodput-under-failure is taken from the ordinary serving fold
(:func:`~repro.metrics.latency.serving_metrics`): the resilience table
reports the same goodput number a healthy run would, so the degradation
is read directly off the fault axis.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.middleware import SideTaskPool
    from repro.serving.frontend import RequestRecord


@dataclasses.dataclass(frozen=True)
class RequestOutcomeCounts:
    """Pre-folded request-layer tallies for streaming metrics mode.

    When the frontend drops records as they settle, it keeps these three
    counters (via :class:`~repro.metrics.latency.ServingAccumulator`) so
    :func:`resilience_metrics` never needs the records themselves.
    """

    retries: int = 0
    failed: int = 0
    exhausted: int = 0


@dataclasses.dataclass
class ResilienceMetrics:
    """Failure/recovery accounting for one run."""

    crashes: int
    restarts: int
    #: fraction of worker-seconds the pool was up over the window
    availability: float
    #: mean crash-to-restart time over restarted workers
    mean_recovery_s: float
    preemptions: int
    restores: int
    checkpoints: int
    checkpoint_overhead_s: float
    restore_overhead_s: float
    #: side-task steps rolled back to a snapshot (or to scratch)
    wasted_steps: int
    #: virtual seconds of side-task work lost (rollbacks + failed steps)
    wasted_s: float
    step_failures: int
    #: extra dispatch attempts spent by the serving retry layer
    retries: int
    #: requests with an explicit "failed" terminal outcome
    failed_requests: int
    #: requests with an "exhausted" (retries ran out) terminal outcome
    exhausted_requests: int
    #: SLO-met completions per second, under the injected faults
    goodput_under_failure_rps: float

    def summary(self) -> dict:
        """JSON-safe digest (the determinism tests serialize these)."""
        return dataclasses.asdict(self)


def resilience_metrics(
    pool: "SideTaskPool",
    records: "typing.Iterable[RequestRecord] | None" = None,
    duration_s: float = 0.0,
    goodput_rps: float = 0.0,
    request_counts: "RequestOutcomeCounts | None" = None,
) -> ResilienceMetrics:
    """Fold a finished run's ledgers into :class:`ResilienceMetrics`.

    ``request_counts`` supplies the request-layer tallies pre-folded
    (streaming metrics mode, where no records survive the run); it takes
    precedence over ``records`` when both are given.
    """
    crashes = restarts = 0
    downtime_s = 0.0
    recovery: list[float] = []
    for worker in pool.workers:
        for crashed_at, restarted_at in worker.crash_log:
            crashes += 1
            if restarted_at is not None:
                restarts += 1
                recovery.append(restarted_at - crashed_at)
            if duration_s > 0:
                up_again = restarted_at if restarted_at is not None else duration_s
                downtime_s += max(0.0, min(up_again, duration_s) - crashed_at)
    worker_seconds = len(pool.workers) * duration_s
    availability = (
        1.0 - downtime_s / worker_seconds if worker_seconds > 0 else 1.0
    )
    mean_recovery_s = sum(recovery) / len(recovery) if recovery else 0.0

    # A restored task appears in two workers' ledgers, and a parked one
    # only in manager.preempted — walk both, dedupe by identity.
    seen: set[int] = set()
    preemptions = restores = checkpoints = step_failures = wasted_steps = 0
    checkpoint_overhead_s = restore_overhead_s = wasted_s = 0.0
    runtimes = [
        task for worker in pool.workers for task in worker.all_tasks
    ] + list(pool.manager.preempted)
    for runtime in runtimes:
        if id(runtime) in seen:
            continue
        seen.add(id(runtime))
        preemptions += runtime.preemptions
        restores += runtime.restores
        checkpoints += runtime.checkpoints
        checkpoint_overhead_s += runtime.checkpoint_s
        restore_overhead_s += runtime.restore_s
        wasted_steps += runtime.wasted_steps
        wasted_s += runtime.wasted_s
        step_failures += runtime.step_failures

    retries = failed_requests = exhausted_requests = 0
    if request_counts is not None:
        retries = request_counts.retries
        failed_requests = request_counts.failed
        exhausted_requests = request_counts.exhausted
    elif records is not None:
        for record in records:
            retries += max(0, record.attempts - 1)
            if record.outcome == "failed":
                failed_requests += 1
            elif record.outcome == "exhausted":
                exhausted_requests += 1

    return ResilienceMetrics(
        crashes=crashes,
        restarts=restarts,
        availability=availability,
        mean_recovery_s=mean_recovery_s,
        preemptions=preemptions,
        restores=restores,
        checkpoints=checkpoints,
        checkpoint_overhead_s=checkpoint_overhead_s,
        restore_overhead_s=restore_overhead_s,
        wasted_steps=wasted_steps,
        wasted_s=wasted_s,
        step_failures=step_failures,
        retries=retries,
        failed_requests=failed_requests,
        exhausted_requests=exhausted_requests,
        goodput_under_failure_rps=goodput_rps,
    )
