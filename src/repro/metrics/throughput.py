"""Throughput accounting for Table 1.

The paper's Table 1 compares "the throughput of side task workloads
running on bubbles using the iterative interface of FreeRide" against
running the same task on Server-II and on the CPU server. The FreeRide
column aggregates across the standard deployment (the same task in every
worker with enough memory) — that aggregate is what the cost model prices
against one dedicated Server-II; the paper's savings rows in Table 2
follow arithmetically from it.
"""

from __future__ import annotations

import dataclasses

from repro.api.results import ResultRow
from repro.calibration import SideTaskProfile
from repro.metrics.cost import dedicated_throughput


@dataclasses.dataclass(frozen=True)
class ThroughputRow(ResultRow):
    """One row of Table 1 (units per second)."""

    export_properties = ("speedup_vs_server_ii", "speedup_vs_cpu")

    name: str
    freeride_iterative: float
    server_ii: float
    server_cpu: float

    @property
    def speedup_vs_server_ii(self) -> float:
        return self.freeride_iterative / self.server_ii if self.server_ii else 0.0

    @property
    def speedup_vs_cpu(self) -> float:
        return self.freeride_iterative / self.server_cpu if self.server_cpu else 0.0


def throughput_row(
    name: str,
    profile: SideTaskProfile,
    units_done: float,
    duration_s: float,
    server_ii_throughput: float | None = None,
    cpu_throughput: float | None = None,
) -> ThroughputRow:
    """Build one Table-1 row from a FreeRide run plus dedicated baselines.

    When the dedicated throughputs are not supplied (e.g. no simulation of
    Server-II was run), the calibrated analytic values are used.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    return ThroughputRow(
        name=name,
        freeride_iterative=units_done / duration_s,
        server_ii=(
            server_ii_throughput
            if server_ii_throughput is not None
            else dedicated_throughput(profile, "server_ii")
        ),
        server_cpu=(
            cpu_throughput
            if cpu_throughput is not None
            else dedicated_throughput(profile, "cpu")
        ),
    )
