"""The paper's cost model (section 6.1.5).

Time increase::

    I = (T_withSideTasks - T_noSideTask) / T_noSideTask

Cost savings::

    S = (C_sideTasks - (C_withSideTasks - C_noSideTask)) / C_noSideTask

where ``C_sideTasks`` prices the side-task work done on Server-I at the
rate the same work would cost on a dedicated Server-II:

    C_sideTasks = sum over tasks of  P_II * W_task / Th_task_on_II

``W`` is work in task units (images, iterations); ``Th`` the measured
dedicated throughput. Positive ``S`` means harvesting bubbles is cheaper
than renting the lower-tier GPU; negative means the co-location overhead
outweighs the harvested work.
"""

from __future__ import annotations

import typing

from repro import calibration
from repro.calibration import SideTaskProfile


def time_increase(t_with_side_tasks: float, t_no_side_task: float) -> float:
    """``I`` — fractional training slowdown due to side tasks."""
    if t_no_side_task <= 0:
        raise ValueError("baseline training time must be positive")
    return (t_with_side_tasks - t_no_side_task) / t_no_side_task


def dedicated_throughput(profile: SideTaskProfile, platform: str) -> float:
    """Units per second of this task alone on Server-II or Server-CPU."""
    speeds = {
        "server_i": 1.0,
        "server_ii": profile.speed_server_ii,
        "cpu": profile.speed_cpu,
    }
    if platform not in speeds:
        raise ValueError(
            f"unknown platform {platform!r}; choose from {sorted(speeds)}"
        )
    return profile.units_per_step * speeds[platform] / profile.step_time_s


def training_cost_usd(duration_s: float,
                      price_per_hour: float = calibration.SERVER_I_PRICE_PER_HOUR
                      ) -> float:
    """Dollars spent keeping the training server for ``duration_s``."""
    return price_per_hour * duration_s / 3600.0


def side_task_cost_usd(
    units_done: float,
    profile: SideTaskProfile,
    price_per_hour: float = calibration.SERVER_II_PRICE_PER_HOUR,
) -> float:
    """What the harvested work would cost on a dedicated Server-II."""
    throughput_ii = dedicated_throughput(profile, "server_ii")
    if throughput_ii <= 0:
        return 0.0
    return price_per_hour * (units_done / throughput_ii) / 3600.0


def cost_savings(
    t_no_side_task: float,
    t_with_side_tasks: float,
    work: typing.Iterable[tuple[float, SideTaskProfile]],
) -> float:
    """``S`` — positive is benefit, negative is loss (section 6.1.5).

    ``work`` is (units_done, profile) per side task.
    """
    c_no = training_cost_usd(t_no_side_task)
    c_with = training_cost_usd(t_with_side_tasks)
    c_side = sum(
        side_task_cost_usd(units, profile) for units, profile in work
    )
    return (c_side - (c_with - c_no)) / c_no


def energy_cost_estimate(
    duration_s: float,
    mean_occupancy: float,
    tdp_watts: float = 300.0,
    idle_watts: float = 70.0,
    usd_per_kwh: float = 0.12,
) -> float:
    """A simple energy-cost hook for the paper's section-8 discussion.

    Linear power model between idle and TDP by SM occupancy; not used in
    the paper's metrics, provided for the energy ablation.
    """
    watts = idle_watts + (tdp_watts - idle_watts) * mean_occupancy
    return watts * duration_s / 3600.0 / 1000.0 * usd_per_kwh
