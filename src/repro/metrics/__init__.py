"""Evaluation metrics: the paper's time increase ``I`` and cost savings
``S`` (section 6.1.5), throughput accounting (Table 1), the bubble
time breakdown (Figure 9), serving latency/goodput accounting
(the `serve` experiment), and per-tenant fairness accounting
(the `fairness` experiment)."""

from repro.metrics.breakdown import BubbleBreakdown, bubble_breakdown
from repro.metrics.cost import (
    cost_savings,
    dedicated_throughput,
    side_task_cost_usd,
    time_increase,
    training_cost_usd,
)
from repro.metrics.fairness import (
    FairnessMetrics,
    TenantUsage,
    fairness_metrics,
    jain_index,
    weighted_share_error,
)
from repro.metrics.latency import LatencyStats, ServingMetrics, serving_metrics
from repro.metrics.throughput import ThroughputRow, throughput_row

__all__ = [
    "BubbleBreakdown",
    "FairnessMetrics",
    "LatencyStats",
    "ServingMetrics",
    "TenantUsage",
    "ThroughputRow",
    "bubble_breakdown",
    "cost_savings",
    "dedicated_throughput",
    "fairness_metrics",
    "jain_index",
    "serving_metrics",
    "side_task_cost_usd",
    "throughput_row",
    "time_increase",
    "training_cost_usd",
    "weighted_share_error",
]
