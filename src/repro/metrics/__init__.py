"""Evaluation metrics: the paper's time increase ``I`` and cost savings
``S`` (section 6.1.5), throughput accounting (Table 1), the bubble
time breakdown (Figure 9), and serving latency/goodput accounting
(the `serve` experiment)."""

from repro.metrics.breakdown import BubbleBreakdown, bubble_breakdown
from repro.metrics.cost import (
    cost_savings,
    dedicated_throughput,
    side_task_cost_usd,
    time_increase,
    training_cost_usd,
)
from repro.metrics.latency import LatencyStats, ServingMetrics, serving_metrics
from repro.metrics.throughput import ThroughputRow, throughput_row

__all__ = [
    "BubbleBreakdown",
    "LatencyStats",
    "ServingMetrics",
    "ThroughputRow",
    "bubble_breakdown",
    "cost_savings",
    "dedicated_throughput",
    "serving_metrics",
    "side_task_cost_usd",
    "throughput_row",
    "time_increase",
    "training_cost_usd",
]
