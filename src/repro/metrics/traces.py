"""Export simulation traces for offline plotting.

The paper's figures are plots over traces — SM occupancy (Figures 1a, 8a),
memory (Figures 1b, 8b), bubbles and op intervals. This module serializes
them to CSV/JSON so any plotting tool can regenerate the figures from a
run.
"""

from __future__ import annotations

import csv
import io
import json

from repro.gpu.device import SimGPU
from repro.pipeline.analysis import TrainingTrace


def occupancy_csv(gpu: SimGPU) -> str:
    """CSV of (time, total, training, side) occupancy points.

    Occupancy recording is opt-in (``SimGPU(record_occupancy=True)`` /
    ``make_server_i(record_occupancy=True)``); exporting from a
    non-recording device raises rather than silently emitting an empty
    trace.
    """
    if not gpu.record_occupancy:
        raise ValueError(
            f"{gpu.name} has no occupancy trace (built with "
            f"record_occupancy=False); construct it with "
            f"record_occupancy=True to export occupancy"
        )
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_s", "occupancy", "training", "side"])
    for time, total, training, side in gpu.occupancy_trace:
        writer.writerow([f"{time:.6f}", f"{total:.3f}", f"{training:.3f}",
                         f"{side:.3f}"])
    return buffer.getvalue()


def memory_csv(gpu: SimGPU) -> str:
    """CSV of (time, used_gb) points."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_s", "used_gb"])
    for time, used in gpu.memory_trace:
        writer.writerow([f"{time:.6f}", f"{used:.3f}"])
    return buffer.getvalue()


def ops_csv(trace: TrainingTrace) -> str:
    """CSV of op intervals (Figure 1a's rectangles)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["epoch", "stage", "kind", "micro_batch", "start_s",
                     "end_s"])
    for record in trace.ops:
        writer.writerow([
            record.epoch, record.op.stage, record.op.kind.value,
            record.op.micro_batch, f"{record.start:.6f}",
            f"{record.end:.6f}",
        ])
    return buffer.getvalue()


def bubbles_json(trace: TrainingTrace) -> str:
    """JSON list of bubble records (Figure 2a's scatter points)."""
    return json.dumps(
        [
            {
                "epoch": bubble.epoch,
                "stage": bubble.stage,
                "index": bubble.index,
                "type": bubble.btype.value,
                "start_s": round(bubble.start, 6),
                "duration_s": round(bubble.duration, 6),
                "available_gb": round(bubble.available_gb, 3),
            }
            for bubble in trace.bubbles
        ],
        indent=2,
    )


def trace_summary(trace: TrainingTrace) -> dict:
    """Machine-readable digest of one training run."""
    from repro.pipeline.analysis import bubble_rate, bubble_shape_stats

    stats = bubble_shape_stats(trace)
    return {
        "epochs": len(trace.epochs),
        "total_time_s": trace.total_time,
        "mean_epoch_time_s": trace.mean_epoch_time(),
        "bubble_rate": bubble_rate(trace),
        "bubble_count": stats.get("count", 0),
        "bubble_duration_range_s": [
            stats.get("min_s", 0.0), stats.get("max_s", 0.0),
        ],
        "ops": len(trace.ops),
    }
