"""Fairness accounting for multi-tenant serving runs.

Groups a run's request records by tenant and reports, per tenant, the
same lifecycle counters and latency quantiles :func:`~repro.metrics.
latency.serving_metrics` reports for the aggregate — plus the two
headline fairness numbers:

* **Jain's fairness index** over weight-normalized goodput
  (``goodput_i / weight_i``): 1.0 means every tenant receives service
  exactly proportional to its weight; ``1/n`` means one tenant gets
  everything;
* **weighted-share error**: the largest gap between any tenant's
  measured share of total goodput and its weight-implied target share —
  the number the ``fairness`` experiment's convergence column tracks.

Tenants come in as anything with ``name``/``weight`` attributes
(:class:`~repro.tenancy.tenants.TenantShare` or
:class:`~repro.api.spec.TenantSpec`); records from tenants nobody
declared are accounted under their own name at weight 1, in first-seen
order, so the numbers never silently drop traffic.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.metrics.latency import (
    LatencyStats,
    ServingAccumulator,
    ServingMetrics,
    serving_metrics,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.frontend import RequestRecord


def jain_index(values: "typing.Sequence[float]") -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)``, in ``[1/n, 1]``.

    Defined as 1.0 for an empty or all-zero allocation (nothing was
    served, so nobody was treated unequally).
    """
    values = list(values)
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def weighted_share_error(values: "typing.Sequence[float]",
                         weights: "typing.Sequence[float]") -> float:
    """Largest ``|measured share - weight-implied target share|``.

    0.0 when the allocation matches the weights exactly (or nothing was
    allocated at all — an all-zero run has no shares to misallocate).
    """
    values = list(values)
    weights = list(weights)
    if len(values) != len(weights):
        raise ValueError(
            f"need one weight per value, got {len(values)} values and "
            f"{len(weights)} weights"
        )
    total = sum(values)
    total_weight = sum(weights)
    if not values or total == 0.0:
        return 0.0
    if total_weight <= 0:
        raise ValueError(f"weights must sum positive, got {total_weight}")
    return max(
        abs(value / total - weight / total_weight)
        for value, weight in zip(values, weights)
    )


@dataclasses.dataclass
class TenantUsage:
    """One tenant's slice of a serving run."""

    name: str
    weight: float
    #: this tenant's aggregate lifecycle counters and latency quantiles
    metrics: ServingMetrics
    #: measured fraction of the run's total goodput
    share: float
    #: weight-implied target fraction
    target_share: float

    @property
    def goodput_rps(self) -> float:
        return self.metrics.goodput_rps

    @property
    def queueing(self) -> LatencyStats:
        return self.metrics.queueing

    @property
    def completion(self) -> LatencyStats:
        return self.metrics.completion

    def summary(self) -> dict:
        """JSON-safe digest (the determinism tests serialize these)."""
        return {
            "tenant": self.name,
            "weight": self.weight,
            "offered": self.metrics.offered,
            "admitted": self.metrics.admitted,
            "rejected": self.metrics.rejected,
            "completed": self.metrics.completed,
            "slo_met": self.metrics.slo_met,
            "goodput_rps": self.metrics.goodput_rps,
            "share": self.share,
            "target_share": self.target_share,
            "queueing_p95": self.metrics.queueing.p95,
            "completion_p95": self.metrics.completion.p95,
        }


@dataclasses.dataclass
class FairnessMetrics:
    """Per-tenant accounting plus the cross-tenant fairness indices."""

    tenants: "list[TenantUsage]"
    #: open-service duration every per-tenant rate normalizes by
    duration_s: float
    #: Jain's index over weight-normalized goodput (1.0 = perfectly fair)
    jain_goodput: float
    #: max |measured share - target share| across tenants
    max_share_error: float

    def tenant(self, name: str) -> TenantUsage:
        for usage in self.tenants:
            if usage.name == name:
                return usage
        raise KeyError(name)

    def summary(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "jain_goodput": self.jain_goodput,
            "max_share_error": self.max_share_error,
            "tenants": [usage.summary() for usage in self.tenants],
        }


def fairness_metrics(
    records: "typing.Iterable[RequestRecord]",
    tenants: typing.Sequence = (),
    duration_s: float = 0.0,
) -> FairnessMetrics:
    """Fold request records into per-tenant fairness accounting.

    ``tenants`` fixes the reporting order and the weights; tenants that
    appear only in the traffic are appended at weight 1.
    """
    records = list(records)
    names = [share.name for share in tenants]
    weights = {share.name: share.weight for share in tenants}
    for record in records:
        tenant = record.request.tenant
        if tenant not in weights:
            names.append(tenant)
            weights[tenant] = 1.0
    per_tenant = {
        name: serving_metrics(
            (record for record in records if record.request.tenant == name),
            duration_s=duration_s,
        )
        for name in names
    }
    return _assemble_fairness(names, weights, per_tenant, duration_s)


def fairness_from_accumulators(
    accumulators: "typing.Mapping[str, ServingAccumulator]",
    tenants: typing.Sequence = (),
    duration_s: float = 0.0,
) -> FairnessMetrics:
    """Streaming-mode fairness: identical accounting to
    :func:`fairness_metrics`, but over per-tenant accumulators the
    frontend fed as requests settled, so no record retention is needed.

    ``accumulators`` must be keyed by tenant name in first-arrival order
    (the frontend registers tenants at arrival time precisely so that
    undeclared-tenant ordering matches the records-mode fold).
    """
    names = [share.name for share in tenants]
    weights = {share.name: share.weight for share in tenants}
    for tenant in accumulators:
        if tenant not in weights:
            names.append(tenant)
            weights[tenant] = 1.0
    per_tenant = {
        name: (accumulators[name] if name in accumulators
               else ServingAccumulator(streaming=True)).metrics(duration_s)
        for name in names
    }
    return _assemble_fairness(names, weights, per_tenant, duration_s)


def _assemble_fairness(
    names: "list[str]",
    weights: "dict[str, float]",
    per_tenant: "dict[str, ServingMetrics]",
    duration_s: float,
) -> FairnessMetrics:
    """Shared tail: per-tenant metrics -> usages + fairness indices."""
    goodputs = [per_tenant[name].goodput_rps for name in names]
    total_goodput = sum(goodputs)
    total_weight = sum(weights[name] for name in names)
    usages = [
        TenantUsage(
            name=name,
            weight=weights[name],
            metrics=per_tenant[name],
            share=(per_tenant[name].goodput_rps / total_goodput
                   if total_goodput > 0 else 0.0),
            target_share=(weights[name] / total_weight
                          if total_weight > 0 else 0.0),
        )
        for name in names
    ]
    return FairnessMetrics(
        tenants=usages,
        duration_s=duration_s,
        jain_goodput=jain_index(
            [usage.goodput_rps / usage.weight for usage in usages]
        ),
        max_share_error=weighted_share_error(
            goodputs, [weights[name] for name in names]
        ),
    )
