"""Structured span tracing: what happened, when, on which track.

A :class:`SpanTracer` records *complete* spans (an interval with a
duration) and *instant* events, each tagged with a category, a
``(process, thread)`` track, and optional JSON-safe args — the exact
vocabulary of the Chrome trace-event format, which
:mod:`repro.obs.export` serializes for Perfetto / ``chrome://tracing``.

The hard rule, enforced by golden-hash tests, is that tracing can never
change a run: emission only appends to a Python list and reads the
clock — it schedules no simulation events and consumes no RNG. And when
tracing is off the cost must be one attribute check: every simulation
seam guards with ``if trace.enabled:`` against the shared
:data:`NULL_TRACER` singleton, whose methods are never called on the
hot path.

Timestamps are virtual-time *seconds* (the exporters convert to the
microseconds Chrome expects); tracks are ``(process, thread)`` string
pairs, interned to integer pid/tid at export time.
"""

from __future__ import annotations

import typing

#: event tuples: (phase, name, category, track, start_s, duration_s, args)
#: — phase "X" for complete spans (duration set), "i" for instants
#: (duration None)
TraceEvent = typing.Tuple[
    str, str, str, "tuple[str, str]", float, "float | None", "dict | None"
]

#: the default track for events that belong to no particular component
DEFAULT_TRACK = ("sim", "main")


class NullTracer:
    """The disabled tracer: one falsy ``enabled`` flag, no-op methods.

    Every instrumentation seam checks ``trace.enabled`` before building
    event arguments, so with this tracer installed (the default on every
    :class:`~repro.sim.engine.Engine`) tracing costs a single attribute
    read per seam.
    """

    __slots__ = ()

    enabled = False

    def instant(self, name: str, ts: float, *, cat: str = "",
                track: "tuple[str, str]" = DEFAULT_TRACK,
                args: "dict | None" = None) -> None:
        pass

    def complete(self, name: str, start: float, end: float, *, cat: str = "",
                 track: "tuple[str, str]" = DEFAULT_TRACK,
                 args: "dict | None" = None) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: the process-wide disabled tracer; engines share it (it has no state)
NULL_TRACER = NullTracer()


class SpanTracer:
    """A live tracer: appends event tuples, nothing else.

    Events accumulate in arrival order (which, because emission happens
    synchronously at the seams, is simulation order). The tracer holds
    plain tuples rather than dicts to keep enabled-mode overhead low;
    :mod:`repro.obs.export` turns them into Chrome trace events.
    """

    __slots__ = ("events",)

    enabled = True

    def __init__(self):
        self.events: "list[TraceEvent]" = []

    def instant(self, name: str, ts: float, *, cat: str = "",
                track: "tuple[str, str]" = DEFAULT_TRACK,
                args: "dict | None" = None) -> None:
        """Record a zero-duration event at ``ts`` (virtual seconds)."""
        self.events.append(("i", name, cat, track, ts, None, args))

    def complete(self, name: str, start: float, end: float, *, cat: str = "",
                 track: "tuple[str, str]" = DEFAULT_TRACK,
                 args: "dict | None" = None) -> None:
        """Record a finished interval ``[start, end]`` (virtual seconds)."""
        self.events.append(("X", name, cat, track, start, end - start, args))

    def __len__(self) -> int:
        return len(self.events)
