"""Observability: span tracing, telemetry, and Chrome-trace export.

The layer has three parts, deliberately dependency-free (nothing here
imports the simulator — the simulator imports this):

* :mod:`repro.obs.tracer` — the structured span tracer and the shared
  :data:`~repro.obs.tracer.NULL_TRACER` every engine starts with;
* :mod:`repro.obs.telemetry` — named counters/gauges with bounded
  ring-buffer timelines, per-run (``sim.telemetry``) and process-wide
  (:data:`~repro.obs.telemetry.PROCESS`);
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and JSONL exporters, plus the
  :class:`~repro.obs.export.TraceResult` a traced run attaches as
  ``result.trace``.

Runners call :func:`attach_tracer` right after building the simulation
(before any instrumented component captures ``sim.trace``) and
:func:`collect_trace` after the run.
"""

from __future__ import annotations

import typing

from repro.obs.export import TraceResult, chrome_trace, trace_jsonl
from repro.obs.telemetry import (
    DEFAULT_RING_LIMIT,
    PROCESS,
    Counter,
    Gauge,
    Telemetry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanTracer

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = [
    "Counter",
    "DEFAULT_RING_LIMIT",
    "Gauge",
    "NULL_TRACER",
    "NullTracer",
    "PROCESS",
    "SpanTracer",
    "Telemetry",
    "TraceResult",
    "attach_tracer",
    "chrome_trace",
    "collect_trace",
    "trace_jsonl",
]


def attach_tracer(sim: "Engine", obs=None) -> "SpanTracer | None":
    """Install a live :class:`SpanTracer` on ``sim`` when ``obs`` (an
    :class:`~repro.api.spec.ObsSpec`, or anything with ``trace`` /
    ``ring_limit`` fields) asks for one; returns it, or None when
    tracing stays off.

    Must run before instrumented components capture ``sim.trace`` at
    construction time (the runners attach right after building the
    engine, before the serving frontend).
    """
    if obs is None or not getattr(obs, "trace", False):
        return None
    # Metrics created from here on use the spec's ring limit; the engine
    # has not recorded anything yet when runners attach.
    sim.telemetry.ring_limit = getattr(obs, "ring_limit", DEFAULT_RING_LIMIT)
    tracer = SpanTracer()
    sim.trace = tracer
    return tracer


def collect_trace(sim: "Engine") -> "TraceResult | None":
    """Bundle a traced engine's events and telemetry as a
    :class:`TraceResult`; None when the engine was never traced."""
    if not sim.trace.enabled:
        return None
    return TraceResult(
        events=sim.trace.events,
        telemetry=sim.telemetry.snapshot(),
        timelines=sim.telemetry.timelines(),
    )
