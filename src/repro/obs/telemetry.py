"""The telemetry registry: named counters and gauges with bounded
ring-buffer timelines.

Two registries exist:

* a **per-run** :class:`Telemetry` hangs off every
  :class:`~repro.sim.engine.Engine` (``sim.telemetry``), so one run's
  queue depths, retries, and wasted work never bleed into the next run
  in the same process;
* the **process-wide** :data:`PROCESS` registry carries the only
  legitimately process-scoped number — total simulation events
  processed, which the benchmark harness reads across runs and the
  parallel sweep folds worker deltas into. ``sim.engine.
  total_events_processed()`` delegates here; use :meth:`Telemetry.
  scoped` to measure a delta over a region instead of sampling the raw
  (monotonically growing) total.

Timelines are bounded deques — recording a sample can never grow a
long run's memory without limit — and sampling is explicit
(:meth:`Counter.record` / :meth:`Gauge.set`), so counters stay cheap
when nobody asks for their history.
"""

from __future__ import annotations

import collections

#: default bound on each metric's timeline ring buffer
DEFAULT_RING_LIMIT = 1024


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value", "timeline")

    def __init__(self, name: str, ring_limit: int = DEFAULT_RING_LIMIT):
        self.name = name
        self.value = 0
        #: bounded (time, value) samples; appended by :meth:`record`
        self.timeline: "collections.deque[tuple[float, float]]" = (
            collections.deque(maxlen=ring_limit)
        )

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def record(self, now: float) -> None:
        """Append a (now, value) sample to the bounded timeline."""
        self.timeline.append((now, self.value))


class Gauge:
    """A named point-in-time level (queue depth, tokens, live workers)."""

    __slots__ = ("name", "value", "timeline")

    def __init__(self, name: str, ring_limit: int = DEFAULT_RING_LIMIT):
        self.name = name
        self.value = 0.0
        self.timeline: "collections.deque[tuple[float, float]]" = (
            collections.deque(maxlen=ring_limit)
        )

    def set(self, value: float, now: "float | None" = None) -> None:
        """Set the level; with ``now`` also sample the timeline."""
        self.value = value
        if now is not None:
            self.timeline.append((now, value))


class _Scope:
    """Context manager measuring one counter's delta over a region."""

    __slots__ = ("counter", "delta", "_start")

    def __init__(self, counter: Counter):
        self.counter = counter
        self.delta = 0

    def __enter__(self) -> "_Scope":
        self._start = self.counter.value
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.delta = self.counter.value - self._start
        return False


class Telemetry:
    """One registry of named counters and gauges (lazily created)."""

    __slots__ = ("ring_limit", "counters", "gauges")

    def __init__(self, ring_limit: int = DEFAULT_RING_LIMIT):
        self.ring_limit = ring_limit
        self.counters: "dict[str, Counter]" = {}
        self.gauges: "dict[str, Gauge]" = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name, self.ring_limit)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name, self.ring_limit)
        return gauge

    def scoped(self, name: str) -> _Scope:
        """Measure ``counter(name)``'s delta over a ``with`` region —
        the run-scoped view of a process-global count."""
        return _Scope(self.counter(name))

    def snapshot(self) -> dict:
        """JSON-safe current values, sorted by name."""
        return {
            "counters": {name: self.counters[name].value
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name].value
                       for name in sorted(self.gauges)},
        }

    def timelines(self) -> "dict[str, list[tuple[float, float]]]":
        """Every non-empty ring-buffer timeline, sorted by name."""
        merged: "dict[str, list[tuple[float, float]]]" = {}
        for registry in (self.counters, self.gauges):
            for name in sorted(registry):
                timeline = registry[name].timeline
                if timeline:
                    merged[name] = list(timeline)
        return merged

    def reset(self) -> None:
        """Drop every metric (used by tests; runs get fresh registries)."""
        self.counters.clear()
        self.gauges.clear()


#: the process-wide registry (see module docstring); everything per-run
#: belongs on ``sim.telemetry`` instead
PROCESS = Telemetry()
