"""Trace exporters: Chrome trace-event JSON and JSONL.

The Chrome trace-event format (the JSON Perfetto and ``chrome://tracing``
load) wants integer pid/tid per track and microsecond timestamps; the
tracer records ``(process, thread)`` string tracks and virtual-time
seconds. Export interns each distinct process name to a pid and each
``(process, thread)`` pair to a tid, emits ``process_name`` /
``thread_name`` metadata events so the viewer shows the real names, and
multiplies timestamps by 1e6. Telemetry timelines ride along as Chrome
counter tracks ("C" events), so queue depth plots right under the spans
that produced it.

:class:`TraceResult` is the object a traced run attaches as
``result.trace``: the raw events plus the run's telemetry snapshot,
with the exporters as methods.
"""

from __future__ import annotations

import dataclasses
import json
import typing

from repro.ioutil import atomic_write_text

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import TraceEvent

#: seconds -> microseconds (the unit Chrome trace timestamps use)
_US = 1_000_000.0


def _intern_tracks(events: "typing.Iterable[TraceEvent]"):
    """Assign integer pid/tid per track, in first-appearance order."""
    pids: "dict[str, int]" = {}
    tids: "dict[tuple[str, str], int]" = {}
    for _ph, _name, _cat, track, _ts, _dur, _args in events:
        process, thread = track
        if process not in pids:
            pids[process] = len(pids) + 1
        if track not in tids:
            tids[track] = len(tids) + 1
    return pids, tids


def _metadata_events(pids: dict, tids: dict) -> "list[dict]":
    """The process_name/thread_name metadata Chrome uses for labels."""
    meta = [
        {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
         "args": {"name": process}}
        for process, pid in pids.items()
    ]
    meta.extend(
        {"ph": "M", "pid": pids[process], "tid": tid, "name": "thread_name",
         "args": {"name": thread}}
        for (process, thread), tid in tids.items()
    )
    return meta


def _span_events(events: "typing.Iterable[TraceEvent]",
                 pids: dict, tids: dict) -> "list[dict]":
    converted = []
    for ph, name, cat, track, ts, dur, args in events:
        event = {
            "ph": ph,
            "name": name,
            "cat": cat or "sim",
            "pid": pids[track[0]],
            "tid": tids[track],
            "ts": ts * _US,
        }
        if ph == "X":
            event["dur"] = dur * _US
        else:
            event["s"] = "t"  # thread-scoped instant
        if args:
            event["args"] = args
        converted.append(event)
    return converted


def _counter_events(timelines: "dict[str, list[tuple[float, float]]]",
                    pid: int) -> "list[dict]":
    converted = []
    for name, samples in timelines.items():
        converted.extend(
            {"ph": "C", "name": name, "cat": "telemetry", "pid": pid,
             "tid": 0, "ts": when * _US, "args": {"value": value}}
            for when, value in samples
        )
    return converted


def chrome_trace(
    events: "typing.Sequence[TraceEvent]",
    timelines: "dict[str, list[tuple[float, float]]] | None" = None,
) -> dict:
    """The Chrome trace-event JSON object for ``events``.

    ``timelines`` (name -> [(time_s, value), ...]) become counter
    tracks under a dedicated "telemetry" process.
    """
    pids, tids = _intern_tracks(events)
    trace_events = _metadata_events(pids, tids)
    trace_events.extend(_span_events(events, pids, tids))
    if timelines:
        telemetry_pid = len(pids) + 1
        trace_events.append(
            {"ph": "M", "pid": telemetry_pid, "tid": 0,
             "name": "process_name", "args": {"name": "telemetry"}}
        )
        trace_events.extend(_counter_events(timelines, telemetry_pid))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def trace_jsonl(events: "typing.Sequence[TraceEvent]") -> str:
    """One JSON object per line, in emission (= simulation) order.

    The streaming-friendly counterpart of :func:`chrome_trace` for
    ad-hoc analysis (``jq``, pandas): track names stay as strings, and
    timestamps stay in virtual seconds.
    """
    lines = []
    for ph, name, cat, track, ts, dur, args in events:
        record: dict = {
            "ph": ph, "name": name, "cat": cat or "sim",
            "process": track[0], "thread": track[1], "ts_s": ts,
        }
        if dur is not None:
            record["dur_s"] = dur
        if args:
            record["args"] = args
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


@dataclasses.dataclass
class TraceResult:
    """One traced run's observability payload (``result.trace``)."""

    #: raw tracer event tuples, in simulation order
    events: "list[TraceEvent]"
    #: the run's final counter/gauge values (``Telemetry.snapshot()``)
    telemetry: dict = dataclasses.field(default_factory=dict)
    #: the run's bounded metric timelines (``Telemetry.timelines()``)
    timelines: "dict[str, list[tuple[float, float]]]" = dataclasses.field(
        default_factory=dict
    )

    @property
    def span_count(self) -> int:
        return len(self.events)

    def events_of(self, cat: "str | None" = None,
                  name: "str | None" = None) -> "list[TraceEvent]":
        """Filter events by category and/or name (tests lean on this)."""
        return [
            event for event in self.events
            if (cat is None or event[2] == cat)
            and (name is None or event[1] == name)
        ]

    # -- exporters -------------------------------------------------------
    def to_chrome(self) -> dict:
        return chrome_trace(self.events, self.timelines)

    def to_chrome_json(self, indent: "int | None" = None) -> str:
        return json.dumps(self.to_chrome(), indent=indent)

    def to_jsonl(self) -> str:
        return trace_jsonl(self.events)

    def write_chrome(self, path) -> None:
        atomic_write_text(path, self.to_chrome_json())

    def write_jsonl(self, path) -> None:
        atomic_write_text(path, self.to_jsonl())
