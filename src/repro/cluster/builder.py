"""Compose several training jobs into one shared-manager deployment.

The core manager is server-count agnostic: it coordinates a flat list of
workers and receives bubbles tagged with a worker index. This module
builds the paper's section-8 deployment as a first-class object — each
training job runs on its own simulated server with its own
instrumentation, all bubble reports flow over RPC to a *single* shared
:class:`~repro.core.manager.SideTaskManager`, and Algorithm 1 places
side tasks across the combined worker pool.

Construction is two-phase::

    cluster = (ClusterBuilder(seed=0, policy=least_loaded_policy)
               .add_job(config_a)
               .add_job(config_b, name="small")
               .build())
    cluster.submit_replicated(workload_factory("pagerank"))
    result = cluster.run()          # -> ClusterResult

The built :class:`Cluster` exposes the same submission/run surface as
:class:`~repro.core.middleware.FreeRide` (``submit`` with SLO tags,
``run_training``/``drain``, ``runtime_for``), so the serving frontend
can admit open-loop traffic against the combined pool unchanged.
"""

from __future__ import annotations

import dataclasses
import typing

from repro import calibration
from repro.cluster.jobs import ClusterJob, as_jobs
from repro.cluster.result import ClusterResult, JobResult
from repro.core.manager import SideTaskManager
from repro.core.middleware import SideTaskPool, _ManagerListener
from repro.core.policies import AssignmentPolicy, least_loaded_policy
from repro.core.task_spec import TaskSpec
from repro.core.worker import SideTaskWorker
from repro.pipeline.config import TrainConfig
from repro.pipeline.engine import PipelineEngine, profile_bubbles
from repro.pipeline.instrumentation import BubbleStart
from repro.pipeline.memory_model import MemoryModel
from repro.sim.engine import Engine
from repro.sim.events import AllOf
from repro.sim.rng import RandomStreams


class _OffsetListener(_ManagerListener):
    """Maps a job's local stage numbers into the global worker index.

    Each job's instrumentation reports bubbles by *local* stage; the
    shared manager keys workers by their index in the combined pool, so
    every report is shifted by the job's stage offset before delivery.
    """

    def __init__(self, *args, stage_offset: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.stage_offset = stage_offset

    def on_bubble_start(self, report: BubbleStart) -> None:
        shifted = dataclasses.replace(
            report, stage=report.stage + self.stage_offset
        )
        super().on_bubble_start(shifted)

    def on_bubble_end(self, stage: int, now: float) -> None:
        super().on_bubble_end(stage + self.stage_offset, now)


class ClusterBuilder:
    """Accumulates jobs and shared policy, then builds a :class:`Cluster`."""

    def __init__(
        self,
        jobs: "typing.Sequence[ClusterJob | TrainConfig]" = (),
        seed: int = 0,
        policy: AssignmentPolicy = least_loaded_policy,
        hook_cost_s: float = calibration.INSTRUMENTATION_OVERHEAD_S,
        rpc_latency_s: float = calibration.RPC_LATENCY_S,
        grace_period_s: float = calibration.GRACE_PERIOD_S,
    ):
        self.jobs: "list[ClusterJob]" = as_jobs(jobs)
        self.seed = seed
        self.policy = policy
        self.hook_cost_s = hook_cost_s
        self.rpc_latency_s = rpc_latency_s
        self.grace_period_s = grace_period_s

    def add_job(
        self,
        config: "TrainConfig | ClusterJob",
        name: str = "",
        server_factory=None,
    ) -> "ClusterBuilder":
        """Append one training job; returns the builder for chaining."""
        if isinstance(config, ClusterJob):
            job = config
        else:
            job = ClusterJob(
                config=config,
                name=name,
                **({"server_factory": server_factory}
                   if server_factory is not None else {}),
            )
        self.jobs.append(job)
        return self

    def build(self) -> "Cluster":
        if not self.jobs:
            raise ValueError("need at least one training job")
        return Cluster(
            self.jobs,
            seed=self.seed,
            policy=self.policy,
            hook_cost_s=self.hook_cost_s,
            rpc_latency_s=self.rpc_latency_s,
            grace_period_s=self.grace_period_s,
        )


class Cluster(SideTaskPool):
    """Several pipeline jobs feeding one shared side-task manager.

    Submission, teardown, and per-task accounting come from
    :class:`~repro.core.middleware.SideTaskPool` — the identical
    surface :class:`~repro.core.middleware.FreeRide` exposes, which is
    what lets the serving frontend admit traffic against the combined
    pool unchanged.
    """

    def __init__(
        self,
        jobs: "typing.Sequence[ClusterJob | TrainConfig]",
        seed: int = 0,
        policy: AssignmentPolicy = least_loaded_policy,
        hook_cost_s: float = calibration.INSTRUMENTATION_OVERHEAD_S,
        rpc_latency_s: float = calibration.RPC_LATENCY_S,
        grace_period_s: float = calibration.GRACE_PERIOD_S,
    ):
        self.jobs = as_jobs(jobs)
        if not self.jobs:
            raise ValueError("need at least one training job")
        self.sim = Engine()
        self.rng = RandomStreams(seed)
        self.workers: "list[SideTaskWorker]" = []
        self.pipelines: "list[PipelineEngine]" = []
        self.servers = []
        #: per job: (label, stage_offset, num_stages)
        self.layout: "list[tuple[str, int, int]]" = []
        # Build workers for every server first: the manager needs the
        # complete pool before any pipeline starts reporting bubbles.
        offset = 0
        for index, job in enumerate(self.jobs):
            config = job.config
            server = job.server_factory(self.sim)
            self.servers.append(server)
            self.layout.append((job.label(index), offset, config.num_stages))
            memory = MemoryModel(
                config.model, config.num_stages, config.micro_batches,
                gpu_memory_gb=server.gpu(0).memory_gb,
            )
            for stage in range(config.num_stages):
                global_index = len(self.workers)
                self.workers.append(
                    SideTaskWorker(
                        self.sim,
                        server.gpu(stage),
                        stage=global_index,  # global index: the manager's key
                        side_task_memory_gb=memory.available_gb(stage),
                        mps=server.mps,
                        rng=self.rng.spawn(f"worker{global_index}"),
                        name=f"{job.label(index)}-worker{stage}",
                    )
                )
            offset += config.num_stages
        self.manager = SideTaskManager(
            self.sim, self.workers, policy=policy,
            rpc_latency_s=rpc_latency_s,
            grace_period_s=grace_period_s,
        )
        for index, job in enumerate(self.jobs):
            config = job.config
            server = self.servers[index]
            profile = profile_bubbles(job.server_factory, config)
            memory = MemoryModel(
                config.model, config.num_stages, config.micro_batches,
                gpu_memory_gb=server.gpu(0).memory_gb,
            )
            listener = _OffsetListener(
                self.sim, self.manager, memory, hook_cost_s, rpc_latency_s,
                stage_offset=self.layout[index][1],
            )
            self.pipelines.append(
                PipelineEngine(
                    self.sim, server, config,
                    rng=self.rng.spawn(f"pipeline{index}"),
                    listener=listener, profile=profile,
                )
            )
        self._submissions: "list[tuple[TaskSpec, str, int]]" = []

    # ------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    def job_of_worker(self, stage: int) -> "tuple[int, int]":
        """Map a global worker index to ``(job_index, local_stage)``."""
        for index, (_label, offset, num_stages) in enumerate(self.layout):
            if offset <= stage < offset + num_stages:
                return index, stage - offset
        raise IndexError(f"no job owns worker {stage}")

    # ------------------------------------------------------------------
    def run_training(self) -> "list":
        """Start every pipeline; run until all jobs complete."""
        procs = [pipeline.start() for pipeline in self.pipelines]
        self.sim.run(until=AllOf(self.sim, procs))
        return [proc.value for proc in procs]

    def run(self, settle_s: float = 2.0) -> ClusterResult:
        """Run every job to completion, stop side tasks, and report."""
        trainings = self.run_training()
        self.drain(settle_s)
        return self.result(trainings)

    def result(self, trainings: "list") -> ClusterResult:
        """Assemble the :class:`ClusterResult` after the runs finish."""
        reports = [
            self._report(spec, interface, stage)
            for spec, interface, stage in self._submissions
        ]
        job_results = [
            JobResult(
                name=label,
                training=trainings[index],
                stage_offset=offset,
                num_stages=num_stages,
                tasks=[report for report in reports
                       if offset <= report.stage < offset + num_stages],
            )
            for index, (label, offset, num_stages) in enumerate(self.layout)
        ]
        return ClusterResult(
            jobs=job_results,
            tasks=reports,
            rejections=list(self.manager.rejections),
        )
