"""Job descriptions for multi-job cluster deployments.

A :class:`ClusterJob` is one pipeline-training job inside a cluster: its
training configuration, the (simulated) server it runs on, and a label.
The :class:`~repro.cluster.builder.ClusterBuilder` turns a sequence of
jobs into one deployment whose bubbles all feed a single shared
side-task manager (paper section 8).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.gpu.cluster import make_server_i
from repro.pipeline.config import TrainConfig

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.cluster import Server
    from repro.sim.engine import Engine

ServerFactory = typing.Callable[["Engine"], "Server"]


@dataclasses.dataclass(frozen=True)
class ClusterJob:
    """One pipeline-training job of a cluster deployment."""

    config: TrainConfig
    #: builds the job's own simulated server inside the shared engine
    server_factory: ServerFactory = make_server_i
    #: display label; empty = "job<index>" at build time
    name: str = ""

    def label(self, index: int) -> str:
        return self.name or f"job{index}"

    @property
    def num_stages(self) -> int:
        return self.config.num_stages


def as_jobs(
    jobs: "typing.Sequence[ClusterJob | TrainConfig]",
) -> "list[ClusterJob]":
    """Normalize a mixed job/config sequence into :class:`ClusterJob`\\ s.

    The legacy ``MultiServerFreeRide`` constructor took bare
    ``TrainConfig`` objects; the builder accepts both shapes.
    """
    normalized = []
    for entry in jobs:
        if isinstance(entry, ClusterJob):
            normalized.append(entry)
        elif isinstance(entry, TrainConfig):
            normalized.append(ClusterJob(config=entry))
        else:
            raise TypeError(
                f"cluster jobs are ClusterJob or TrainConfig, "
                f"got {type(entry).__name__}"
            )
    return normalized
