"""Typed results for cluster runs.

A :class:`ClusterResult` reports one multi-job deployment: per-job
training outcomes (:class:`JobResult`), the flat side-task reports over
the combined worker pool (stages are *global* worker indices), the
manager's rejections, and — when the run served open-loop traffic —
the request records and serving metrics.

Utilization is the cluster's headline number: of all the bubble seconds
the jobs produced, how many were actually spent running side tasks.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.middleware import TaskReport
from repro.pipeline.engine import TrainingResult

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metrics.fairness import FairnessMetrics
    from repro.metrics.latency import ServingMetrics
    from repro.metrics.resilience import ResilienceMetrics
    from repro.obs.export import TraceResult
    from repro.serving.frontend import RequestRecord


@dataclasses.dataclass
class JobResult:
    """One training job's share of a cluster run."""

    name: str
    training: TrainingResult
    #: this job's first global worker index (its stage 0)
    stage_offset: int
    num_stages: int
    #: side-task reports whose worker belongs to this job
    tasks: "list[TaskReport]" = dataclasses.field(default_factory=list)

    @property
    def bubble_time_s(self) -> float:
        """Total bubble seconds this job's training produced."""
        return sum(
            bubble.duration for bubble in self.training.trace.bubbles
        )

    @property
    def harvested_s(self) -> float:
        """Side-task running seconds on this job's workers."""
        return sum(report.running_s for report in self.tasks)

    @property
    def utilization(self) -> float:
        """Fraction of this job's bubble time spent running side tasks."""
        bubble_s = self.bubble_time_s
        return self.harvested_s / bubble_s if bubble_s > 0 else 0.0


@dataclasses.dataclass
class ClusterResult:
    """Outcome of one multi-job cluster run."""

    jobs: "list[JobResult]"
    #: every submitted side task, stage = global worker index
    tasks: "list[TaskReport]"
    rejections: "list[tuple[str, str]]"
    #: set when the run served open-loop traffic through the frontend
    records: "list[RequestRecord] | None" = None
    metrics: "ServingMetrics | None" = None
    open_duration_s: "float | None" = None
    #: per-tenant fairness accounting (set when the traffic was tenanted)
    fairness: "FairnessMetrics | None" = None
    #: failure/recovery accounting (set when the spec had a faults section)
    resilience: "ResilienceMetrics | None" = None
    #: structured span trace (set when the spec enabled ``obs.trace``)
    trace: "TraceResult | None" = None

    # -- back-compat with MultiServerResult -----------------------------
    @property
    def trainings(self) -> "list[TrainingResult]":
        return [job.training for job in self.jobs]

    # -- aggregates -----------------------------------------------------
    @property
    def total_units(self) -> float:
        return sum(report.units_done for report in self.tasks)

    @property
    def total_steps(self) -> int:
        return sum(report.steps_done for report in self.tasks)

    @property
    def total_bubble_s(self) -> float:
        return sum(job.bubble_time_s for job in self.jobs)

    @property
    def harvested_s(self) -> float:
        return sum(report.running_s for report in self.tasks)

    @property
    def utilization(self) -> float:
        """Cluster-wide bubble utilization: harvested / produced."""
        bubble_s = self.total_bubble_s
        return self.harvested_s / bubble_s if bubble_s > 0 else 0.0

    def job(self, name: str) -> JobResult:
        for job in self.jobs:
            if job.name == name:
                return job
        raise KeyError(name)

    def task(self, name: str) -> TaskReport:
        for report in self.tasks:
            if report.name == name:
                return report
        raise KeyError(name)
