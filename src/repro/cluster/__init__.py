"""Multi-job cluster deployments: one shared manager, many training jobs.

The paper's section-8 scalability extension as a first-class subsystem:

* :mod:`repro.cluster.jobs` — :class:`ClusterJob`, one training job
  (config + server factory + label);
* :mod:`repro.cluster.builder` — :class:`ClusterBuilder` and
  :class:`Cluster`: per-job engines and instrumentation composed into a
  single shared :class:`~repro.core.manager.SideTaskManager` over the
  combined worker pool;
* :mod:`repro.cluster.result` — :class:`ClusterResult` /
  :class:`JobResult`, including cluster-wide bubble utilization.

Declarative use goes through the scenario API: a ``kind="cluster"``
:class:`~repro.api.spec.ScenarioSpec` executed by
:class:`~repro.api.session.ClusterRunner` (``repro run cluster``).
"""

from repro.cluster.builder import Cluster, ClusterBuilder
from repro.cluster.jobs import ClusterJob, as_jobs
from repro.cluster.result import ClusterResult, JobResult

__all__ = [
    "Cluster",
    "ClusterBuilder",
    "ClusterJob",
    "ClusterResult",
    "JobResult",
    "as_jobs",
]
