"""Durable sweep control plane: SQLite task store, leasing broker,
worker loop, and the pluggable sweep backends built on them.

The package turns any registered experiment's parameter sweep into a
crash-tolerant submit-poll-collect run: ``repro sweep <scenario>
--backend=queue`` enqueues the points, ``repro worker <queue.db>``
processes drain them (N shells or N machines over one database), and
aggregation is byte-identical to the serial and pool executors no
matter how the work interleaved or how often a worker died mid-point.
"""

from repro.distrib.broker import (
    DEFAULT_LEASE_TIMEOUT_S,
    DEFAULT_RETRY,
    Broker,
    Lease,
)
from repro.distrib.executor import (
    BACKENDS,
    SweepBackend,
    current_backend,
    queue_sweep,
    resolve,
    spawn_worker,
    use_backend,
)
from repro.distrib.store import (
    DEAD,
    DONE,
    FAILED,
    LEASED,
    PENDING,
    RUNNING,
    STATES,
    TaskStore,
)
from repro.distrib.worker import Worker, WorkerStats, default_worker_id

__all__ = [
    "BACKENDS",
    "Broker",
    "DEAD",
    "DEFAULT_LEASE_TIMEOUT_S",
    "DEFAULT_RETRY",
    "DONE",
    "FAILED",
    "LEASED",
    "Lease",
    "PENDING",
    "RUNNING",
    "STATES",
    "SweepBackend",
    "TaskStore",
    "Worker",
    "WorkerStats",
    "current_backend",
    "default_worker_id",
    "queue_sweep",
    "resolve",
    "spawn_worker",
    "use_backend",
]
