"""The broker: sweep enqueue, leasing, retry policy, and aggregation.

One :class:`Broker` wraps a :class:`~repro.distrib.store.TaskStore` and
owns everything above raw rows:

* **enqueue** — :meth:`submit` fingerprints ``(fn, payloads)`` into a
  deterministic sweep id, so re-submitting the same grid *resumes* the
  surviving rows instead of restarting (the crash-recovery contract);
* **leasing** — :meth:`lease` claims the lowest-index leasable point
  with a visibility timeout; :meth:`reap` returns expired leases to the
  queue (or DEAD, once attempts are exhausted);
* **retries** — a failed attempt re-queues with the backoff of a
  :class:`~repro.faults.retry.RetryPolicy`, jittered by a pure hash of
  ``(sweep_id, point_index, attempt)`` exactly like the fault layer's
  step failures: no process-global RNG, every worker computes the same
  gate;
* **aggregation** — :meth:`aggregate` returns decoded results ordered
  by **point index, not completion time**, which is what keeps a
  queue-backed sweep byte-identical to the serial executor no matter
  how many workers ran it, how they interleaved, or how often a point
  crashed and retried on the way to DONE.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import time
import typing

from repro.distrib import codec
from repro.distrib.store import DEAD, TERMINAL, TaskStore
from repro.errors import DistribError
from repro.faults.retry import RetryPolicy

#: default visibility timeout: a worker that goes silent this long
#: forfeits its point
DEFAULT_LEASE_TIMEOUT_S = 60.0

#: default retry policy for failed points (max_attempts caps *all*
#: attempts — clean failures and lease expiries alike)
DEFAULT_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.5,
                            backoff_factor=2.0, jitter=0.1)


@dataclasses.dataclass(frozen=True)
class Lease:
    """One claimed point: everything a worker needs to run it."""

    sweep_id: str
    point_index: int
    fn_ref: str
    payload: object
    #: this lease's attempt number (1 = first try)
    attempts: int
    #: how often this point's previous leases expired
    lease_expiries: int
    #: seconds the point waited leasable before this lease
    queue_latency_s: float
    #: this lease's visibility timeout
    lease_timeout_s: float


def _sweep_fingerprint(fn_ref: str, payloads: "typing.Sequence[str]") -> str:
    digest = hashlib.sha256()
    digest.update(fn_ref.encode())
    for payload in payloads:
        digest.update(b"\0")
        digest.update(payload.encode())
    return digest.hexdigest()


def _backoff_rng(sweep_id: str, point_index: int, attempt: int) -> random.Random:
    """A deterministic RNG per (sweep, point, attempt) — the jitter is a
    pure hash, never a shared stream (the fault layer's discipline)."""
    seed_bytes = hashlib.sha256(
        f"{sweep_id}:{point_index}:{attempt}".encode()
    ).digest()[:8]
    return random.Random(int.from_bytes(seed_bytes, "big"))


class Broker:
    """Queue operations over one task store (see module docstring).

    ``clock`` injects wall time (tests drive expiry without sleeping);
    ``retry``/``lease_timeout_s`` are recorded in the sweep row at
    submit time so every worker — whichever process it lives in —
    applies the same policy.
    """

    def __init__(
        self,
        store: "TaskStore | str",
        retry: "RetryPolicy | None" = None,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        clock: "typing.Callable[[], float]" = time.time,
    ):
        self.store = store if isinstance(store, TaskStore) else TaskStore(store)
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.lease_timeout_s = lease_timeout_s
        self.clock = clock
        self._retry_cache: "dict[str, RetryPolicy]" = {}

    # -- enqueue ---------------------------------------------------------
    def submit(
        self,
        items: typing.Iterable,
        fn: typing.Callable,
        sweep_id: "str | None" = None,
    ) -> "tuple[str, bool]":
        """Enqueue one sweep; returns ``(sweep_id, resumed)``.

        The default sweep id is the grid fingerprint itself, so an
        identical re-submission — same function, same point payloads —
        finds the previous run's rows and resumes them.
        """
        ref = codec.fn_ref(fn)
        payloads = [codec.encode_item(item) for item in items]
        fingerprint = _sweep_fingerprint(ref, payloads)
        if sweep_id is None:
            sweep_id = fingerprint[:16]
        resumed = self.store.create_sweep(
            sweep_id, ref, payloads, fingerprint,
            retry_json=json.dumps(dataclasses.asdict(self.retry),
                                  sort_keys=True),
            max_attempts=self.retry.max_attempts,
            lease_timeout_s=self.lease_timeout_s,
            now=self.clock(),
        )
        return sweep_id, resumed

    # -- worker side -----------------------------------------------------
    def lease(self, worker_id: str, sweep_id: "str | None" = None,
              lease_timeout_s: "float | None" = None) -> "Lease | None":
        """Claim the next leasable point (any sweep unless pinned);
        ``lease_timeout_s`` overrides the sweep's visibility timeout."""
        row = self.store.lease_next(
            worker_id, self.clock(), lease_timeout_s=lease_timeout_s,
            sweep_id=sweep_id,
        )
        if row is None:
            return None
        return Lease(
            sweep_id=row["sweep_id"],
            point_index=row["point_index"],
            fn_ref=row["fn"],
            payload=codec.decode(row["payload"]),
            attempts=row["attempts"],
            lease_expiries=row["lease_expiries"],
            queue_latency_s=row["queue_latency_s"],
            lease_timeout_s=row["lease_timeout_s"],
        )

    def start(self, lease: Lease, worker_id: str) -> bool:
        """Mark the lease's point RUNNING; False if the lease was lost."""
        return self.store.mark_running(
            lease.sweep_id, lease.point_index, worker_id, self.clock()
        )

    def complete(self, lease: Lease, worker_id: str, result,
                 events: int = 0) -> bool:
        """Store the result and mark DONE; False if the lease was lost
        (a slower duplicate of an already-retaken point)."""
        return self.store.complete(
            lease.sweep_id, lease.point_index, worker_id,
            codec.encode_result(result), events, self.clock(),
        )

    def fail(self, lease: Lease, worker_id: str, error: str) -> bool:
        """Record a failed attempt: FAILED with the retry policy's
        backoff gate, or DEAD once attempts are exhausted."""
        policy = self._sweep_retry(lease.sweep_id)
        now = self.clock()
        dead = lease.attempts >= policy.max_attempts
        not_before = now
        if not dead:
            not_before = now + policy.delay_s(
                lease.attempts,
                _backoff_rng(lease.sweep_id, lease.point_index,
                             lease.attempts),
            )
        return self.store.fail(
            lease.sweep_id, lease.point_index, worker_id, error,
            now=now, not_before=not_before, dead=dead,
        )

    def reap(self) -> "tuple[int, int]":
        """Expire overdue leases; returns ``(requeued, dead)``."""
        return self.store.reap_expired(self.clock())

    def _sweep_retry(self, sweep_id: str) -> RetryPolicy:
        policy = self._retry_cache.get(sweep_id)
        if policy is None:
            row = self.store.sweep_row(sweep_id)
            policy = RetryPolicy(**json.loads(row["retry_json"]))
            self._retry_cache[sweep_id] = policy
        return policy

    # -- client side -----------------------------------------------------
    def counts(self, sweep_id: "str | None" = None) -> "dict[str, int]":
        return self.store.counts(sweep_id)

    def finished(self, sweep_id: str) -> bool:
        """Every point terminal (DONE or DEAD)."""
        counts = self.store.counts(sweep_id)
        total = self.store.sweep_row(sweep_id)["num_points"]
        return sum(counts[state] for state in TERMINAL) >= total

    def aggregate(self, sweep_id: str) -> "tuple[list, int]":
        """Decoded results ordered by point index, plus the summed
        foreign event count. Raises while points are unfinished, and on
        any DEAD point (naming it and its last error)."""
        counts = self.store.counts(sweep_id)
        total = self.store.sweep_row(sweep_id)["num_points"]
        if counts[DEAD]:
            dead = [point for point in self.store.points(sweep_id)
                    if point["state"] == DEAD]
            detail = "; ".join(
                f"#{point['point_index']} after {point['attempts']} "
                f"attempt(s): {point['error']}"
                for point in dead[:3]
            )
            raise DistribError(
                f"sweep {sweep_id!r} has {counts[DEAD]} DEAD point(s) "
                f"[{detail}]; fix the failure and re-enqueue to retry "
                "the dead points on a fresh database"
            )
        done = self.store.results(sweep_id)
        if len(done) < total:
            raise DistribError(
                f"sweep {sweep_id!r} is not finished: "
                f"{len(done)}/{total} points DONE ({counts})"
            )
        results = [codec.decode(row["result"]) for row in done]
        events = sum(row["events"] for row in done)
        return results, events
