"""Pluggable sweep backends and the queue-backed client loop.

:func:`repro.experiments.common.sweep` resolves its executor here. A
:class:`SweepBackend` names one of three backends:

* ``pool`` (default) — the in-process ``ProcessPoolExecutor`` path;
* ``serial`` — run the points inline (what ``REPRO_SWEEP_WORKERS=1``
  used to be the only spelling of);
* ``queue`` — the durable control plane: enqueue the points into a
  SQLite task store, let ``repro worker`` processes drain them, poll,
  and aggregate by point index.

Resolution order: an explicit argument to ``sweep()``, then the
innermost :func:`use_backend` context (how ``registry.run(...,
backend=...)`` and the ``repro sweep`` verb scope a backend around one
scenario), then the ``REPRO_SWEEP_BACKEND`` / ``REPRO_SWEEP_QUEUE``
environment, then the default pool.

The queue client is plantit's submit-poll-collect shape: :func:`queue_sweep`
enqueues (resuming surviving rows when the same grid was enqueued
before), optionally spawns local ``repro worker`` subprocesses, polls
while reaping expired leases, and finally aggregates — byte-identical
to the serial executor regardless of worker count, interleaving, or
crash/retry history.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import subprocess
import sys
import time
import typing

from repro.distrib.broker import DEFAULT_LEASE_TIMEOUT_S, Broker
from repro.distrib.store import DONE, TaskStore
from repro.errors import DistribError, SweepConfigError
from repro.faults.retry import RetryPolicy

#: the sweep executor vocabulary
BACKENDS = ("serial", "pool", "queue")

#: environment knobs (the CLI flags' ambient cousins)
BACKEND_ENV = "REPRO_SWEEP_BACKEND"
QUEUE_ENV = "REPRO_SWEEP_QUEUE"


@dataclasses.dataclass(frozen=True)
class SweepBackend:
    """One resolved executor choice for :func:`~repro.experiments.common.sweep`."""

    backend: str = "pool"
    #: queue database path (queue backend only)
    db: "str | None" = None
    #: local ``repro worker`` subprocesses the client spawns (0 = rely
    #: on externally started workers)
    workers: int = 0
    #: client poll interval while waiting on the queue
    poll_s: float = 0.25
    #: visibility timeout recorded in the sweep row
    lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S
    #: attempt cap (clean failures and lease expiries both count)
    max_attempts: int = 3
    #: give up waiting after this long (None = wait forever)
    timeout_s: "float | None" = None

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise SweepConfigError(
                f"unknown sweep backend {self.backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            )
        if self.workers < 0:
            raise SweepConfigError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.max_attempts < 1:
            raise SweepConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def require_db(self) -> str:
        if self.backend == "queue" and not self.db:
            raise SweepConfigError(
                "the queue backend needs a database path: pass --db / "
                f"SweepBackend(db=...) or set {QUEUE_ENV}"
            )
        return typing.cast(str, self.db)


#: the use_backend() context stack (innermost wins)
_STACK: "list[SweepBackend]" = []


@contextlib.contextmanager
def use_backend(backend: "SweepBackend | str", **fields):
    """Scope a sweep backend over a region::

        with use_backend("serial"):
            registry.run("serve")           # sweeps run inline

        with use_backend("queue", db="runs/q.db", workers=2):
            ...
    """
    if isinstance(backend, str):
        backend = SweepBackend(backend=backend, **fields)
    elif fields:
        backend = dataclasses.replace(backend, **fields)
    _STACK.append(backend)
    try:
        yield backend
    finally:
        _STACK.pop()


def current_backend() -> "SweepBackend | None":
    """The innermost :func:`use_backend` scope, if any."""
    return _STACK[-1] if _STACK else None


def resolve(explicit: "SweepBackend | str | None" = None) -> SweepBackend:
    """The backend a sweep should use right now (see module docstring
    for the precedence order)."""
    if isinstance(explicit, SweepBackend):
        return explicit
    if isinstance(explicit, str):
        return SweepBackend(backend=explicit, db=os.environ.get(QUEUE_ENV))
    if _STACK:
        return _STACK[-1]
    env = os.environ.get(BACKEND_ENV, "").strip()
    if env:
        if env not in BACKENDS:
            raise SweepConfigError(
                f"{BACKEND_ENV} must be one of {sorted(BACKENDS)}, "
                f"got {env!r}"
            )
        return SweepBackend(backend=env, db=os.environ.get(QUEUE_ENV))
    return SweepBackend()


def spawn_worker(db: str, poll_s: float = 0.25,
                 lease_timeout_s: "float | None" = None) -> subprocess.Popen:
    """Start one local ``repro worker`` subprocess over ``db``."""
    argv = [sys.executable, "-m", "repro.cli", "worker", db,
            "--poll", str(poll_s)]
    if lease_timeout_s is not None:
        argv += ["--lease-timeout", str(lease_timeout_s)]
    return subprocess.Popen(argv)


def queue_sweep(items: typing.Sequence, fn: typing.Callable,
                config: SweepBackend) -> list:
    """Run a sweep through the durable queue (see module docstring)."""
    db = config.require_db()
    retry = RetryPolicy(max_attempts=config.max_attempts)
    with TaskStore(db) as store:
        broker = Broker(store, retry=retry,
                        lease_timeout_s=config.lease_timeout_s)
        sweep_id, resumed = broker.submit(items, fn)
        if resumed:
            print(f"resuming sweep {sweep_id} from {db} "
                  f"({broker.counts(sweep_id)[DONE]}/{len(items)} points "
                  "already done)", file=sys.stderr)
        elif config.workers == 0:
            print(f"enqueued sweep {sweep_id} ({len(items)} points) on "
                  f"{db}; waiting for `repro worker {db}` processes...",
                  file=sys.stderr)
        procs = [
            spawn_worker(db, poll_s=min(config.poll_s, 0.25),
                         lease_timeout_s=config.lease_timeout_s)
            for _ in range(config.workers)
        ]
        try:
            _wait(broker, sweep_id, config, procs)
            results, events = broker.aggregate(sweep_id)
        finally:
            _shutdown(procs)
    from repro.sim import engine as sim_engine

    sim_engine.add_foreign_events(events)
    return results


def _wait(broker: Broker, sweep_id: str, config: SweepBackend,
          procs: "list[subprocess.Popen]") -> None:
    """Poll (reaping expired leases) until every point is terminal."""
    deadline = (time.monotonic() + config.timeout_s
                if config.timeout_s is not None else None)
    while True:
        broker.reap()
        if broker.finished(sweep_id):
            return
        if procs and all(proc.poll() is not None for proc in procs):
            # Local workers drain-exit only once everything is
            # terminal; all of them dying early means the sweep cannot
            # finish on its own (unless external workers exist, in
            # which case don't spawn local ones). Re-check first: the
            # last worker may have completed the final point between
            # the finished() probe above and its own exit.
            if broker.finished(sweep_id):
                return
            raise DistribError(
                f"all {len(procs)} local worker process(es) exited but "
                f"sweep {sweep_id!r} is unfinished: "
                f"{broker.counts(sweep_id)}"
            )
        if deadline is not None and time.monotonic() > deadline:
            raise DistribError(
                f"timed out after {config.timeout_s:g}s waiting for "
                f"sweep {sweep_id!r}: {broker.counts(sweep_id)}"
            )
        time.sleep(config.poll_s)


def _shutdown(procs: "list[subprocess.Popen]") -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            proc.kill()
            proc.wait()
