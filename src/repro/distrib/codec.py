"""Serialization for queue rows: point payloads, results, and the
point function itself.

Queue rows outlive the process that wrote them, so everything a worker
needs must be self-contained text:

* the **point function** travels as a ``module:qualname`` reference —
  the same "module-level function" contract the process-pool executor
  already imposes (lambdas, closures, and ``functools.partial`` are
  rejected with a clear error instead of a pickle blow-up on a remote
  worker);
* **payloads** (the sweep items) are canonical JSON —
  :class:`~repro.api.spec.ScenarioSpec` items use their lossless dict
  codec (tagged ``spec``), JSON-safe values ship as-is (tagged
  ``json``), anything else falls back to pickled base64 (tagged
  ``pickle``). Canonical (sorted-key) text makes the sweep fingerprint
  stable, which is what makes resume-by-re-enqueue work;
* **results** are encoded the same way but with insertion order
  preserved — aggregated rows must re-serialize byte-identically to the
  serial executor's, and dict key order is part of those bytes.
"""

from __future__ import annotations

import base64
import importlib
import json
import pickle
import typing

from repro.errors import DistribError


def fn_ref(fn: typing.Callable) -> str:
    """The importable ``module:qualname`` reference for ``fn``.

    Rejects anything a fresh worker process could not import by name:
    lambdas, locally defined functions, bound methods of instances, and
    ``functools.partial`` objects.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise DistribError(
            f"queue point function {fn!r} has no module-level name; "
            "pass a module-level function (functools.partial and "
            "callables without __qualname__ cannot be shipped to workers)"
        )
    if "<" in qualname:
        raise DistribError(
            f"queue point function {module}.{qualname} is not importable "
            "by name (lambda or locally defined); move it to module level"
        )
    ref = f"{module}:{qualname}"
    if resolve_fn(ref) is not fn:
        raise DistribError(
            f"queue point function reference {ref!r} does not resolve "
            "back to the function that was submitted; workers would run "
            "something else"
        )
    return ref


def resolve_fn(ref: str) -> typing.Callable:
    """Import the function a :func:`fn_ref` string names."""
    module_name, sep, qualname = ref.partition(":")
    if not sep or not module_name or not qualname:
        raise DistribError(
            f"malformed point-function reference {ref!r}; "
            "expected 'module:qualname'"
        )
    try:
        obj: object = importlib.import_module(module_name)
    except ImportError as error:
        raise DistribError(
            f"cannot import module {module_name!r} for point function "
            f"{ref!r}: {error}"
        ) from None
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise DistribError(
                f"module {module_name!r} has no attribute path "
                f"{qualname!r} (point function {ref!r})"
            ) from None
    if not callable(obj):
        raise DistribError(f"point-function reference {ref!r} is not callable")
    return obj


def _envelope(value) -> dict:
    """The tagged codec envelope for ``value`` (see module docstring)."""
    from repro.api.spec import ScenarioSpec

    if isinstance(value, ScenarioSpec):
        return {"codec": "spec", "data": value.to_dict()}
    try:
        if json.loads(json.dumps(value)) == value:
            return {"codec": "json", "data": value}
    except (TypeError, ValueError):
        pass
    blob = base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")
    return {"codec": "pickle", "data": blob}


def encode_item(value) -> str:
    """Canonical (sorted-key) payload text — fingerprint-stable."""
    return json.dumps(_envelope(value), sort_keys=True)


def encode_result(value) -> str:
    """Order-preserving result text — re-serializes byte-identically."""
    return json.dumps(_envelope(value))


def decode(text: str):
    """Invert :func:`encode_item` / :func:`encode_result`."""
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as error:
        raise DistribError(f"corrupt queue payload: {error}") from None
    if not isinstance(envelope, dict) or "codec" not in envelope:
        raise DistribError(
            f"corrupt queue payload: missing codec tag in {text[:80]!r}"
        )
    codec, data = envelope["codec"], envelope.get("data")
    if codec == "json":
        return data
    if codec == "spec":
        from repro.api.spec import ScenarioSpec

        return ScenarioSpec.from_dict(data)
    if codec == "pickle":
        return pickle.loads(base64.b64decode(data))
    raise DistribError(f"unknown queue payload codec {codec!r}")
