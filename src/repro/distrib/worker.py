"""The worker loop: lease, run, report — the ``repro worker`` verb.

A worker is one process in the submit-poll-collect topology: N shells
on one machine (or N machines over a shared filesystem) each run
``repro worker <queue.db>`` and drain whatever sweeps the database
holds. The loop is deliberately boring::

    reap expired leases -> lease next point -> import fn -> run ->
    complete (or fail with backoff) -> repeat

Workers exit when the store is non-empty and every point is terminal
(``--keep-alive`` polls forever instead); an empty store means "the
sweep is still being enqueued", so the worker waits. Nested sweeps
inside a point run serially — the worker *is* the parallelism, exactly
like the process-pool path's ``_IN_SWEEP_WORKER`` guard.

Per-point telemetry flows through the PR-7 observability registry
(:data:`repro.obs.telemetry.PROCESS` by default): attempt and
completion counters, reaped lease expiries, and a queue-latency gauge
with its bounded timeline.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import time
import traceback
import typing
import uuid

from repro.distrib.broker import Broker, Lease
from repro.distrib.codec import resolve_fn
from repro.distrib.store import TaskStore


def default_worker_id() -> str:
    """host-pid-nonce: unique across machines sharing one database."""
    return (f"{socket.gethostname()}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:6]}")


@dataclasses.dataclass
class WorkerStats:
    """What one worker-loop run did (printed by the CLI verb)."""

    points_done: int = 0
    points_failed: int = 0
    attempts: int = 0
    lease_expiries_reaped: int = 0
    points_reaped_dead: int = 0
    lost_leases: int = 0

    def summary(self) -> str:
        return (
            f"{self.points_done} point(s) done, "
            f"{self.points_failed} failed attempt(s), "
            f"{self.attempts} lease(s) taken, "
            f"{self.lease_expiries_reaped} expired lease(s) reaped, "
            f"{self.lost_leases} lost"
        )


class Worker:
    """One submit-poll-collect worker over a queue database.

    ``clock``/``sleep`` are injectable so tests drive lease expiry and
    idle polling without wall-clock waits; ``max_points`` bounds the
    number of completed points (tests use it to script interleavings);
    ``telemetry`` defaults to the process-wide obs registry.
    """

    def __init__(
        self,
        store: "TaskStore | str",
        worker_id: "str | None" = None,
        poll_s: float = 0.5,
        lease_timeout_s: "float | None" = None,
        max_points: "int | None" = None,
        keep_alive: bool = False,
        sweep_id: "str | None" = None,
        clock: "typing.Callable[[], float]" = time.time,
        sleep: "typing.Callable[[float], None]" = time.sleep,
        telemetry=None,
    ):
        self.store = store if isinstance(store, TaskStore) else TaskStore(store)
        self.worker_id = worker_id or default_worker_id()
        self.poll_s = poll_s
        self.max_points = max_points
        self.keep_alive = keep_alive
        self.sweep_id = sweep_id
        self.clock = clock
        self.sleep = sleep
        if telemetry is None:
            from repro.obs.telemetry import PROCESS

            telemetry = PROCESS
        self.telemetry = telemetry
        self.broker = Broker(self.store, clock=clock)
        self._lease_timeout_s = lease_timeout_s
        self._fn_cache: "dict[str, typing.Callable]" = {}

    # -- the loop --------------------------------------------------------
    def run(self) -> WorkerStats:
        """Drain the store (see module docstring for the exit rule)."""
        stats = WorkerStats()
        self._enter_worker_mode()
        while True:
            requeued, dead = self.broker.reap()
            if requeued or dead:
                stats.lease_expiries_reaped += requeued + dead
                stats.points_reaped_dead += dead
                self.telemetry.counter("distrib.lease_expiries").add(
                    requeued + dead
                )
            lease = self.broker.lease(
                self.worker_id, sweep_id=self.sweep_id,
                lease_timeout_s=self._lease_timeout_s,
            )
            if lease is None:
                if self._drained():
                    break
                self.sleep(self.poll_s)
                continue
            stats.attempts += 1
            if self.run_point(lease, stats):
                if (self.max_points is not None
                        and stats.points_done >= self.max_points):
                    break
        return stats

    def _drained(self) -> bool:
        """No leasable or in-flight work left anywhere in the store."""
        if self.keep_alive or not self.store.has_any_sweep():
            return False
        return self.store.all_terminal(self.sweep_id)

    # -- one point -------------------------------------------------------
    def run_point(self, lease: Lease, stats: WorkerStats) -> bool:
        """Run one leased point to a terminal report; True on DONE."""
        self.telemetry.counter("distrib.attempts").add()
        self.telemetry.gauge("distrib.queue_latency_s").set(
            lease.queue_latency_s, now=self.clock()
        )
        if not self.broker.start(lease, self.worker_id):
            stats.lost_leases += 1
            self.telemetry.counter("distrib.lost_leases").add()
            return False
        from repro.obs.telemetry import PROCESS

        try:
            fn = self._resolve(lease.fn_ref)
            with PROCESS.scoped("sim.events_processed") as scope:
                result = fn(lease.payload)
        except BaseException as error:
            detail = "".join(
                traceback.format_exception_only(type(error), error)
            ).strip()
            self.broker.fail(lease, self.worker_id, detail)
            stats.points_failed += 1
            self.telemetry.counter("distrib.failures").add()
            if not isinstance(error, Exception):
                raise  # KeyboardInterrupt/SystemExit: record, then die
            return False
        if self.broker.complete(lease, self.worker_id, result,
                                events=scope.delta):
            stats.points_done += 1
            self.telemetry.counter("distrib.points_done").add()
            return True
        stats.lost_leases += 1
        self.telemetry.counter("distrib.lost_leases").add()
        return False

    def _resolve(self, ref: str) -> typing.Callable:
        fn = self._fn_cache.get(ref)
        if fn is None:
            fn = self._fn_cache[ref] = resolve_fn(ref)
        return fn

    @staticmethod
    def _enter_worker_mode() -> None:
        """Nested sweeps inside a point stay serial: this worker *is*
        the parallelism (mirrors the process-pool initializer)."""
        from repro.experiments import common

        common._IN_SWEEP_WORKER = True
