"""The durable task store: one SQLite row per sweep point.

A point moves through the state machine::

    PENDING ──lease──▶ LEASED ──start──▶ RUNNING ──▶ DONE
       ▲                 │                  │
       │   (lease expires: reap)            │ (attempt failed)
       ├────────────◀────┴──────◀───────────┤
       │                                    ▼
       └──────◀── FAILED (awaiting retry)   DEAD (attempts exhausted)

``FAILED`` is "awaiting retry after a failed attempt" — leasable again
once its backoff gate (``not_before``) passes; ``DONE`` and ``DEAD`` are
terminal. Attempts count at lease time, so a worker that takes a lease
and dies (crash, SIGKILL) burns an attempt exactly like a clean failure:
the reaper returns expired leases to ``PENDING`` until the sweep's
attempt cap turns a poison point ``DEAD`` instead of letting it
crash-loop forever.

Every mutation is a single guarded transaction (``BEGIN IMMEDIATE`` +
``WHERE state = ...``), so N worker processes on one machine — or on a
shared filesystem — can hammer the same database without double-leasing
a point; a transition that lost its race reports failure instead of
silently clobbering another worker's row. All timestamps are caller-
supplied wall-clock seconds: the store never reads the clock, which is
what makes lease expiry and backoff unit-testable without sleeping.
"""

from __future__ import annotations

import os
import sqlite3
import typing

from repro.errors import DistribError

#: the point state machine's vocabulary
PENDING = "PENDING"
LEASED = "LEASED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
DEAD = "DEAD"

STATES = (PENDING, LEASED, RUNNING, DONE, FAILED, DEAD)
#: states a worker may take a lease on (FAILED = awaiting retry)
LEASABLE = (PENDING, FAILED)
#: states that end a point's life
TERMINAL = (DONE, DEAD)
#: states holding a live lease (subject to expiry reaping)
IN_FLIGHT = (LEASED, RUNNING)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_id        TEXT PRIMARY KEY,
    fn              TEXT NOT NULL,
    num_points      INTEGER NOT NULL,
    fingerprint     TEXT NOT NULL,
    retry_json      TEXT NOT NULL,
    max_attempts    INTEGER NOT NULL,
    lease_timeout_s REAL NOT NULL,
    created_at      REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    sweep_id       TEXT NOT NULL REFERENCES sweeps(sweep_id),
    point_index    INTEGER NOT NULL,
    payload        TEXT NOT NULL,
    state          TEXT NOT NULL DEFAULT 'PENDING',
    attempts       INTEGER NOT NULL DEFAULT 0,
    lease_expiries INTEGER NOT NULL DEFAULT 0,
    worker_id      TEXT,
    lease_deadline REAL,
    not_before     REAL NOT NULL DEFAULT 0,
    queued_at      REAL NOT NULL DEFAULT 0,
    started_at     REAL,
    finished_at    REAL,
    events         INTEGER NOT NULL DEFAULT 0,
    result         TEXT,
    error          TEXT,
    PRIMARY KEY (sweep_id, point_index)
);
CREATE INDEX IF NOT EXISTS idx_points_work
    ON points(state, not_before, sweep_id, point_index);
"""


class TaskStore:
    """One SQLite-backed queue database (see module docstring)."""

    def __init__(self, path: "str | os.PathLike"):
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        # Explicit transactions (BEGIN IMMEDIATE) instead of the sqlite3
        # module's implicit ones: a lease must hold the write lock from
        # SELECT through UPDATE.
        self._conn.isolation_level = None
        self._conn.execute("PRAGMA busy_timeout = 30000")
        try:
            # WAL lets readers poll while a worker commits; harmless to
            # lose (e.g. unsupported filesystem) — the rollback journal
            # is just as crash-safe, only slower under contention.
            self._conn.execute("PRAGMA journal_mode = WAL")
        except sqlite3.Error:  # pragma: no cover - filesystem dependent
            pass
        self._conn.executescript(_SCHEMA)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "TaskStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _begin(self) -> None:
        self._conn.execute("BEGIN IMMEDIATE")

    # -- sweep creation / resume ----------------------------------------
    def create_sweep(
        self,
        sweep_id: str,
        fn: str,
        payloads: "typing.Sequence[str]",
        fingerprint: str,
        retry_json: str,
        max_attempts: int,
        lease_timeout_s: float,
        now: float,
    ) -> bool:
        """Insert the sweep and its points; returns True if it resumed.

        Re-enqueueing an existing ``sweep_id`` with the same fingerprint
        is the resume path: the surviving rows (DONE results included)
        are kept untouched. A different fingerprint under the same id
        is a hard error — silently mixing two grids would corrupt both.
        """
        self._begin()
        try:
            row = self._conn.execute(
                "SELECT fingerprint, num_points FROM sweeps WHERE sweep_id = ?",
                (sweep_id,),
            ).fetchone()
            if row is not None:
                if (row["fingerprint"] != fingerprint
                        or row["num_points"] != len(payloads)):
                    raise DistribError(
                        f"sweep {sweep_id!r} already exists in {self.path} "
                        "with a different grid (fingerprint mismatch); "
                        "use a fresh database or a different sweep id"
                    )
                self._conn.execute("COMMIT")
                return True
            self._conn.execute(
                "INSERT INTO sweeps (sweep_id, fn, num_points, fingerprint,"
                " retry_json, max_attempts, lease_timeout_s, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (sweep_id, fn, len(payloads), fingerprint, retry_json,
                 max_attempts, lease_timeout_s, now),
            )
            self._conn.executemany(
                "INSERT INTO points (sweep_id, point_index, payload,"
                " state, queued_at) VALUES (?, ?, ?, ?, ?)",
                [(sweep_id, index, payload, PENDING, now)
                 for index, payload in enumerate(payloads)],
            )
            self._conn.execute("COMMIT")
            return False
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def sweep_row(self, sweep_id: str) -> dict:
        row = self._conn.execute(
            "SELECT * FROM sweeps WHERE sweep_id = ?", (sweep_id,)
        ).fetchone()
        if row is None:
            raise DistribError(f"no sweep {sweep_id!r} in {self.path}")
        return dict(row)

    # -- leasing ---------------------------------------------------------
    def lease_next(
        self,
        worker_id: str,
        now: float,
        lease_timeout_s: "float | None" = None,
        sweep_id: "str | None" = None,
    ) -> "dict | None":
        """Atomically claim the next leasable point, lowest index first.

        Returns the claimed row (attempt count already incremented, the
        sweep's ``fn``/``retry_json`` joined in, and the point's queue
        latency computed) or None when nothing is currently leasable.
        ``lease_timeout_s`` defaults to the sweep's own value.
        """
        self._begin()
        try:
            query = (
                "SELECT p.sweep_id, p.point_index, p.payload, p.state,"
                " p.attempts, p.lease_expiries, p.queued_at,"
                " s.fn, s.retry_json, s.max_attempts, s.lease_timeout_s"
                " FROM points p JOIN sweeps s ON p.sweep_id = s.sweep_id"
                f" WHERE p.state IN ({_sql_states(LEASABLE)})"
                " AND p.not_before <= ?"
            )
            params: list = [now]
            if sweep_id is not None:
                query += " AND p.sweep_id = ?"
                params.append(sweep_id)
            query += " ORDER BY p.sweep_id, p.point_index LIMIT 1"
            row = self._conn.execute(query, params).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            timeout = (lease_timeout_s if lease_timeout_s is not None
                       else row["lease_timeout_s"])
            updated = self._conn.execute(
                "UPDATE points SET state = ?, attempts = attempts + 1,"
                " worker_id = ?, lease_deadline = ?"
                " WHERE sweep_id = ? AND point_index = ? AND state = ?",
                (LEASED, worker_id, now + timeout,
                 row["sweep_id"], row["point_index"], row["state"]),
            )
            if updated.rowcount != 1:  # pragma: no cover - single-tx guard
                raise DistribError(
                    f"lease race on {row['sweep_id']}#{row['point_index']}"
                )
            self._conn.execute("COMMIT")
            claimed = dict(row)
            claimed["attempts"] += 1
            claimed["queue_latency_s"] = max(0.0, now - row["queued_at"])
            claimed["lease_timeout_s"] = timeout
            return claimed
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def mark_running(self, sweep_id: str, point_index: int,
                     worker_id: str, now: float) -> bool:
        """LEASED → RUNNING; False when the lease was lost (reaped and
        retaken by another worker)."""
        updated = self._conn.execute(
            "UPDATE points SET state = ?, started_at = ?"
            " WHERE sweep_id = ? AND point_index = ?"
            " AND state = ? AND worker_id = ?",
            (RUNNING, now, sweep_id, point_index, LEASED, worker_id),
        )
        return updated.rowcount == 1

    def complete(self, sweep_id: str, point_index: int, worker_id: str,
                 result: str, events: int, now: float) -> bool:
        """LEASED/RUNNING → DONE; False when the lease was lost first
        (another worker owns the point now — first completion wins)."""
        updated = self._conn.execute(
            "UPDATE points SET state = ?, result = ?, events = ?,"
            " finished_at = ?, error = NULL, lease_deadline = NULL"
            f" WHERE sweep_id = ? AND point_index = ?"
            f" AND state IN ({_sql_states(IN_FLIGHT)}) AND worker_id = ?",
            (DONE, result, events, now, sweep_id, point_index, worker_id),
        )
        return updated.rowcount == 1

    def fail(self, sweep_id: str, point_index: int, worker_id: str,
             error: str, now: float, not_before: float,
             dead: bool) -> bool:
        """LEASED/RUNNING → FAILED (awaiting retry at ``not_before``) or
        DEAD (attempts exhausted); False when the lease was lost."""
        if dead:
            updated = self._conn.execute(
                "UPDATE points SET state = ?, error = ?, finished_at = ?,"
                " lease_deadline = NULL"
                f" WHERE sweep_id = ? AND point_index = ?"
                f" AND state IN ({_sql_states(IN_FLIGHT)}) AND worker_id = ?",
                (DEAD, error, now, sweep_id, point_index, worker_id),
            )
        else:
            updated = self._conn.execute(
                "UPDATE points SET state = ?, error = ?, not_before = ?,"
                " queued_at = ?, worker_id = NULL, lease_deadline = NULL"
                f" WHERE sweep_id = ? AND point_index = ?"
                f" AND state IN ({_sql_states(IN_FLIGHT)}) AND worker_id = ?",
                (FAILED, error, not_before, now,
                 sweep_id, point_index, worker_id),
            )
        return updated.rowcount == 1

    # -- reaping ---------------------------------------------------------
    def reap_expired(self, now: float) -> "tuple[int, int]":
        """Return expired leases to PENDING; attempts-exhausted ones go
        DEAD instead. Returns ``(requeued, dead)`` counts.

        A lease expiry is the queue's only signal that a worker died
        mid-point, so it burns the attempt the lease already counted —
        the cap in the sweep row is what stops a worker-killing poison
        point from crash-looping every worker in turn.
        """
        self._begin()
        try:
            dead = self._conn.execute(
                "UPDATE points SET state = ?, finished_at = ?,"
                " lease_expiries = lease_expiries + 1, worker_id = NULL,"
                " lease_deadline = NULL,"
                " error = 'lease expired after ' || attempts || ' attempt(s)'"
                f" WHERE state IN ({_sql_states(IN_FLIGHT)})"
                " AND lease_deadline < ?"
                " AND attempts >= (SELECT max_attempts FROM sweeps"
                "                  WHERE sweeps.sweep_id = points.sweep_id)",
                (DEAD, now, now),
            ).rowcount
            requeued = self._conn.execute(
                "UPDATE points SET state = ?,"
                " lease_expiries = lease_expiries + 1, worker_id = NULL,"
                " lease_deadline = NULL, queued_at = ?"
                f" WHERE state IN ({_sql_states(IN_FLIGHT)})"
                " AND lease_deadline < ?",
                (PENDING, now, now),
            ).rowcount
            self._conn.execute("COMMIT")
            return requeued, dead
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    # -- introspection ---------------------------------------------------
    def counts(self, sweep_id: "str | None" = None) -> "dict[str, int]":
        """Point counts per state (every state present, zeros included)."""
        query = "SELECT state, COUNT(*) AS n FROM points"
        params: tuple = ()
        if sweep_id is not None:
            query += " WHERE sweep_id = ?"
            params = (sweep_id,)
        query += " GROUP BY state"
        counts = {state: 0 for state in STATES}
        for row in self._conn.execute(query, params):
            counts[row["state"]] = row["n"]
        return counts

    def all_terminal(self, sweep_id: "str | None" = None) -> bool:
        counts = self.counts(sweep_id)
        return sum(counts[state] for state in STATES) == sum(
            counts[state] for state in TERMINAL
        )

    def has_any_sweep(self) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM sweeps LIMIT 1"
        ).fetchone() is not None

    def points(self, sweep_id: str) -> "list[dict]":
        """Every point row of a sweep, by index (tests/telemetry)."""
        rows = self._conn.execute(
            "SELECT * FROM points WHERE sweep_id = ? ORDER BY point_index",
            (sweep_id,),
        ).fetchall()
        return [dict(row) for row in rows]

    def results(self, sweep_id: str) -> "list[dict]":
        """The DONE rows' (index, result, events), by index."""
        rows = self._conn.execute(
            "SELECT point_index, result, events FROM points"
            " WHERE sweep_id = ? AND state = ? ORDER BY point_index",
            (sweep_id, DONE),
        ).fetchall()
        return [dict(row) for row in rows]


def _sql_states(states: "typing.Sequence[str]") -> str:
    """A validated ``IN (...)`` literal list (states are module
    constants, never user input)."""
    for state in states:
        if state not in STATES:  # pragma: no cover - programming error
            raise DistribError(f"unknown point state {state!r}")
    return ", ".join(f"'{state}'" for state in states)
