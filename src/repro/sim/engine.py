"""The discrete-event engine: a virtual clock plus an event heap.

The engine processes events in ``(time, sequence)`` order, so simultaneous
events run in the order they were scheduled — which makes every simulation
in this library fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
import typing

from repro.errors import SimulationError
from repro.sim.events import SimEvent, Timeout
from repro.sim.process import Process

ProcessGenerator = typing.Generator[SimEvent, object, object]


class Engine:
    """Drives a discrete-event simulation in virtual seconds."""

    def __init__(self):
        self._now: float = 0.0
        self._heap: list[tuple[float, int, SimEvent]] = []
        self._sequence = itertools.count()
        self._processes_started = 0

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event construction ---------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a pending event owned by this engine."""
        return SimEvent(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Spawn a simulation process from a generator."""
        self._processes_started += 1
        return Process(self, generator, name=name or f"proc-{self._processes_started}")

    # -- scheduling ------------------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, next(self._sequence), event))

    # -- execution ---------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        when, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event heap corrupted: time moved backwards")
        self._now = when
        event._process()

    def run(self, until: float | SimEvent | None = None) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the heap drains;
        * a number — run until virtual time reaches that instant;
        * an event — run until that event is processed, returning its value.
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, SimEvent):
            stop_event = until
            while not stop_event.processed:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before "
                        f"{stop_event!r} was processed"
                    )
                self.step()
            return stop_event.value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon}; clock is already at {self._now}"
            )
        while self._heap and self.peek() <= horizon:
            self.step()
        self._now = horizon
        return None
