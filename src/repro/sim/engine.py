"""The discrete-event engine: a virtual clock plus an event queue.

The engine processes events in ``(time, sequence)`` order, so simultaneous
events run in the order they were scheduled — which makes every simulation
in this library fully deterministic for a given seed.

``run`` localizes the heap and ``heappop`` instead of dispatching through
``step``/``peek`` per event: the drain loop executes once per event and
its overhead used to dominate end-to-end experiment time. Two further
drain-loop refinements feed the scale ladder (see PERFORMANCE.md):
same-instant events are popped in an inner batch so the clock is written
once per distinct instant, and the ``until``-horizon loop pops first and
compares the popped time against the horizon (pushing the one
overshooting event back) instead of peeking ``heap[0][0]`` twice per
event.

The pending set lives in a plain binary heap by default. Constructing
``Engine(queue="calendar")`` — or setting ``REPRO_SIM_QUEUE=calendar`` —
swaps in the bucketed :class:`~repro.sim.calqueue.CalendarQueue`, which
processes events in exactly the same order (pinned by golden tests) but
pays ``log`` of one bucket instead of ``log`` of the whole pending set
per operation.
"""

from __future__ import annotations

import os
import typing
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.obs.telemetry import PROCESS, Telemetry
from repro.obs.tracer import NULL_TRACER
from repro.sim.calqueue import DEFAULT_BUCKET_WIDTH, CalendarQueue
from repro.sim.events import PROCESSED, SimEvent, Timeout
from repro.sim.process import Process

ProcessGenerator = typing.Generator[SimEvent, object, object]

#: Events processed by every engine in this process, as a named counter
#: in the process-wide telemetry registry (parallel sweep workers report
#: their own deltas back to the parent; see ``experiments.common``,
#: which scopes this counter per run — the raw total only grows).
_PROCESS_EVENTS = PROCESS.counter("sim.events_processed")


def total_events_processed() -> int:
    """Process-wide count of processed events, for perf accounting.

    This number is never reset and spans every engine the process ran;
    for a per-run count read ``engine.events_processed`` (or scope the
    process counter: ``PROCESS.scoped("sim.events_processed")``).
    """
    return _PROCESS_EVENTS.value


def add_foreign_events(count: int) -> None:
    """Fold events processed elsewhere (sweep workers) into the total."""
    _PROCESS_EVENTS.add(count)


#: Recognized values for ``Engine(queue=...)`` / ``REPRO_SIM_QUEUE``.
QUEUE_KINDS = ("heap", "calendar")


class Engine:
    """Drives a discrete-event simulation in virtual seconds.

    ``queue`` picks the pending-event structure: ``"heap"`` (the
    default) keeps the classic global binary heap; ``"calendar"`` uses
    the bucketed :class:`~repro.sim.calqueue.CalendarQueue` with
    ``bucket_width``-second buckets. ``None`` defers to the
    ``REPRO_SIM_QUEUE`` environment variable (falling back to the
    heap), so a whole run can be switched without touching every
    ``Engine()`` construction site. Event order is identical either
    way.
    """

    def __init__(self, queue: str | None = None,
                 bucket_width: float = DEFAULT_BUCKET_WIDTH):
        if queue is None:
            queue = os.environ.get("REPRO_SIM_QUEUE", "heap")
        if queue not in QUEUE_KINDS:
            raise SimulationError(
                f"unknown event queue {queue!r}; expected one of {QUEUE_KINDS}"
            )
        self.queue_kind = queue
        self._now: float = 0.0
        self._heap: list[tuple[float, int, SimEvent]] = []
        if queue == "calendar":
            self._queue: CalendarQueue | None = CalendarQueue(bucket_width)
            #: fast-path insert hook; ``None`` means "heappush onto
            #: ``_heap``" (open-coded by Timeout.__init__ and _schedule)
            self._push: typing.Callable[[tuple], None] | None = self._queue.push
        else:
            self._queue = None
            self._push = None
        self._sequence = 0
        self._processes_started = 0
        #: events this engine has popped and processed
        self.events_processed = 0
        #: span tracer; the shared no-op singleton until a runner
        #: attaches a live one (see :func:`repro.obs.attach_tracer`)
        self.trace = NULL_TRACER
        #: this run's own metric registry (counters/gauges/timelines)
        self.telemetry = Telemetry()

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event construction ---------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a pending event owned by this engine."""
        return SimEvent(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Spawn a simulation process from a generator."""
        self._processes_started += 1
        return Process(self, generator, name=name or f"proc-{self._processes_started}")

    # -- scheduling ------------------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        seq = self._sequence
        self._sequence = seq + 1
        item = (self._now + delay, seq, event)
        if self._push is None:
            heappush(self._heap, item)
        else:
            self._push(item)

    # -- execution ---------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        if self._queue is not None:
            return self._queue.peek_time()
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if self._queue is not None:
            if not self._queue:
                raise SimulationError("step() on an empty event heap")
            when, _seq, event = self._queue.pop()
        else:
            if not self._heap:
                raise SimulationError("step() on an empty event heap")
            when, _seq, event = heappop(self._heap)
        if when < self._now:
            raise SimulationError("event heap corrupted: time moved backwards")
        self._now = when
        self._account(1)
        event._process()

    def run(self, until: float | SimEvent | None = None) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the heap drains;
        * a number — run until virtual time reaches that instant;
        * an event — run until that event is processed, returning its value.

        Scheduling guarantees monotone event times (negative delays are
        rejected at ``_schedule``), so unlike :meth:`step` the drain loops
        skip the per-event clock check. Same-instant events are drained
        in an inner batch (one clock write per distinct instant), and
        the horizon loop pops first and pushes back the one event that
        overshoots rather than peeking the front twice per event.
        """
        if self._queue is not None:
            return self._run_calendar(until)
        heap = self._heap
        processed = 0
        try:
            if until is None:
                while heap:
                    item = heappop(heap)
                    when = item[0]
                    self._now = when
                    processed += 1
                    item[2]._process()
                    while heap and heap[0][0] == when:
                        item = heappop(heap)
                        processed += 1
                        item[2]._process()
                return None

            if isinstance(until, SimEvent):
                stop_event = until
                while stop_event._state != PROCESSED:
                    if not heap:
                        raise SimulationError(
                            "simulation ran out of events before "
                            f"{stop_event!r} was processed"
                        )
                    item = heappop(heap)
                    self._now = item[0]
                    processed += 1
                    item[2]._process()
                return stop_event.value

            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until {horizon}; clock is already at {self._now}"
                )
            while heap:
                item = heappop(heap)
                when = item[0]
                if when > horizon:
                    heappush(heap, item)
                    break
                self._now = when
                processed += 1
                item[2]._process()
                while heap and heap[0][0] == when:
                    item = heappop(heap)
                    processed += 1
                    item[2]._process()
            self._now = horizon
            return None
        finally:
            self._account(processed)

    def _run_calendar(self, until: float | SimEvent | None) -> object:
        """The :meth:`run` drain loops over a :class:`CalendarQueue`."""
        queue = self._queue
        assert queue is not None
        pop = queue.pop
        processed = 0
        try:
            if until is None:
                while queue:
                    item = pop()
                    self._now = item[0]
                    processed += 1
                    item[2]._process()
                return None

            if isinstance(until, SimEvent):
                stop_event = until
                while stop_event._state != PROCESSED:
                    if not queue:
                        raise SimulationError(
                            "simulation ran out of events before "
                            f"{stop_event!r} was processed"
                        )
                    item = pop()
                    self._now = item[0]
                    processed += 1
                    item[2]._process()
                return stop_event.value

            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until {horizon}; clock is already at {self._now}"
                )
            while queue:
                item = pop()
                when = item[0]
                if when > horizon:
                    queue.push(item)
                    break
                self._now = when
                processed += 1
                item[2]._process()
            self._now = horizon
            return None
        finally:
            self._account(processed)

    def _account(self, processed: int) -> None:
        # Called once per run()/step(), not per event, so the registry
        # lookups stay off the drain loop's hot path.
        self.events_processed += processed
        self.telemetry.counter("sim.events_processed").add(processed)
        _PROCESS_EVENTS.add(processed)
