"""Event primitives for the discrete-event engine.

An event moves through three states:

``PENDING``
    created but not yet triggered;
``TRIGGERED``
    scheduled on the engine's heap with a value or an exception;
``PROCESSED``
    popped from the heap; its callbacks have run.

Processes wait on events by yielding them (see :mod:`repro.sim.process`).

This module is the simulator's innermost hot path: a ten-second FreeRide
run creates several hundred thousand events, most of them timeouts. The
classes therefore use ``__slots__`` and keep their constructors free of
string formatting — display names are computed lazily in ``__repr__``.
"""

from __future__ import annotations

import typing
from heapq import heappush

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """A one-shot event that processes can wait on.

    Callbacks are callables of one argument (the event itself) invoked in
    registration order when the event is processed.
    """

    __slots__ = ("engine", "name", "callbacks", "_state", "_value", "_exception")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self.callbacks: list[typing.Callable[["SimEvent"], None]] = []
        self._state = PENDING
        self._value: object = None
        self._exception: BaseException | None = None

    # -- state inspection -------------------------------------------------
    @property
    def pending(self) -> bool:
        return self._state == PENDING

    @property
    def triggered(self) -> bool:
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event carries a value rather than an exception."""
        if self._state == PENDING:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._exception is None

    @property
    def value(self) -> object:
        if self._state == PENDING:
            raise SimulationError(f"event {self!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    # -- triggering -------------------------------------------------------
    def succeed(self, value: object = None, delay: float = 0.0) -> "SimEvent":
        """Trigger the event with ``value`` after ``delay`` virtual seconds."""
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._state = TRIGGERED
        self._value = value
        self.engine._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "SimEvent":
        """Trigger the event with an exception after ``delay`` seconds."""
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._state = TRIGGERED
        self._exception = exception
        self.engine._schedule(self, delay)
        return self

    # -- engine hook ------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks; called exactly once by the engine."""
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.__class__.__name__
        return f"<{label} state={self._state}>"


class Timeout(SimEvent):
    """An event that triggers after a fixed delay, created pre-triggered."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: object = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Field assignments and scheduling are open-coded (no
        # super().__init__, no engine._schedule) and the display name is
        # computed on demand: this constructor runs a few hundred thousand
        # times per simulated run.
        self.engine = engine
        self.callbacks = []
        self._state = TRIGGERED
        self._value = value
        self._exception = None
        self.delay = delay
        seq = engine._sequence
        engine._sequence = seq + 1
        push = engine._push
        if push is None:
            heappush(engine._heap, (engine._now + delay, seq, self))
        else:
            push((engine._now + delay, seq, self))

    @property
    def name(self) -> str:  # shadows the SimEvent slot; computed lazily
        return f"Timeout({self.delay:.6g})"


class _Condition(SimEvent):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: typing.Sequence[SimEvent]):
        super().__init__(engine, name=self.__class__.__name__)
        self.events = list(events)
        for event in self.events:
            if event.engine is not engine:
                raise SimulationError("condition mixes events from different engines")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            if event._state == PROCESSED:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: SimEvent) -> None:
        raise NotImplementedError

    def _collect_values(self) -> list[object]:
        return [event._value for event in self.events if event._state != PENDING]


class AllOf(_Condition):
    """Triggers once every child event has been processed.

    The value is the list of child values in declaration order. If any child
    fails, the condition fails with that child's exception.
    """

    __slots__ = ()

    def _on_child(self, event: SimEvent) -> None:
        if self._state != PENDING:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self.events])


class AnyOf(_Condition):
    """Triggers as soon as the first child event is processed.

    The value is that child's value; failure propagates a child failure.
    """

    __slots__ = ()

    def _on_child(self, event: SimEvent) -> None:
        if self._state != PENDING:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed(event._value)
