"""POSIX-like signals in virtual time.

FreeRide's imperative interface pauses and resumes side tasks with
``SIGTSTP`` / ``SIGCONT`` and the framework-enforced limit kills runaway
tasks with ``SIGKILL`` (paper sections 4.2 and 4.5). This module provides
the signal vocabulary and a small dispatcher mixin used by the simulated
GPU processes.
"""

from __future__ import annotations

import enum
import typing


class Signal(enum.Enum):
    """The subset of POSIX signals the paper's mechanisms rely on."""

    SIGTSTP = "SIGTSTP"  # stop (catchable in the imperative interface)
    SIGCONT = "SIGCONT"  # continue a stopped process
    SIGKILL = "SIGKILL"  # unconditional termination (not catchable)
    SIGTERM = "SIGTERM"  # polite termination request (catchable)


SignalHandler = typing.Callable[[Signal], None]


class SignalDispatcher:
    """Per-process signal handler table with default-action hooks.

    Subclasses (or owners) register handlers for catchable signals;
    ``SIGKILL`` always invokes the ``on_kill`` hook and cannot be masked,
    matching POSIX semantics.
    """

    def __init__(self, on_kill: typing.Callable[[], None]):
        self._handlers: dict[Signal, SignalHandler] = {}
        self._on_kill = on_kill
        self.delivered: list[tuple[float, Signal]] = []

    def register(self, signal: Signal, handler: SignalHandler) -> None:
        if signal is Signal.SIGKILL:
            raise ValueError("SIGKILL cannot be caught")
        self._handlers[signal] = handler

    def deliver(self, signal: Signal, now: float) -> None:
        """Deliver ``signal`` at virtual time ``now``."""
        self.delivered.append((now, signal))
        if signal is Signal.SIGKILL:
            self._on_kill()
            return
        handler = self._handlers.get(signal)
        if handler is not None:
            handler(signal)
