"""Discrete-event simulation engine.

This package is a small, dependency-free discrete-event simulator in the
style of SimPy: simulation *processes* are Python generators that ``yield``
events (timeouts, bare events, or composite conditions) and are resumed by
the :class:`~repro.sim.engine.Engine` when those events trigger.

It is the substrate on which the simulated GPUs (:mod:`repro.gpu`), the
pipeline-training engine (:mod:`repro.pipeline`) and the FreeRide middleware
(:mod:`repro.core`) all run in *virtual time*, which lets the whole
multi-GPU evaluation of the paper execute deterministically on a laptop.
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Interrupt, SimEvent, Timeout
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.signals import Signal

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Signal",
    "SimEvent",
    "Timeout",
]
