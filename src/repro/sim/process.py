"""Generator-coroutine simulation processes.

A process wraps a generator that yields events; the process resumes when the
yielded event triggers. A :class:`Process` is itself an event that triggers
when the generator returns (value = return value) or raises (failure), so
processes can wait on one another.

Processes support SimPy-style interrupts: :meth:`Process.interrupt` throws
:class:`~repro.sim.events.Interrupt` into the generator at the current
virtual instant, detaching it from whatever event it was waiting on.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim.events import PENDING, PROCESSED, Interrupt, SimEvent

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class Process(SimEvent):
    """A running simulation process (and the event of its termination)."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, engine: "Engine", generator, name: str = "proc"):
        super().__init__(engine, name=name)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self._generator = generator
        self._waiting_on: SimEvent | None = None
        # Kick the generator off at the current instant.
        bootstrap = SimEvent(engine, name=f"{name}:start")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()
        self._waiting_on = bootstrap

    @property
    def alive(self) -> bool:
        """True until the generator has finished or failed."""
        return self.pending

    @property
    def waiting_on(self) -> SimEvent | None:
        """The event this process is currently blocked on, if any."""
        return self._waiting_on

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a dead process is a no-op, mirroring POSIX ``kill`` on a
        reaped pid being harmless within this simulation's semantics.
        """
        if not self.alive:
            return
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        wakeup = SimEvent(self.engine, name=f"{self.name}:interrupt")
        wakeup.callbacks.append(lambda _ev: self._resume_with_throw(Interrupt(cause)))
        wakeup.succeed()

    # -- generator driving -------------------------------------------------
    def _resume(self, event: SimEvent) -> None:
        self._waiting_on = None
        if self._state != PENDING:
            return
        try:
            if event._exception is not None:
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.fail(exc)
            return
        self._wait_for(target)

    def _resume_with_throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as raised:  # noqa: BLE001 - propagate via event
            self.fail(raised)
            return
        self._wait_for(target)

    def _wait_for(self, target: object) -> None:
        if not isinstance(target, SimEvent):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; expected a SimEvent"
                )
            )
            return
        if target.engine is not self.engine:
            self.fail(SimulationError("process yielded an event from another engine"))
            return
        if target._state == PROCESSED:
            # Already done: resume at the current instant via a fresh event so
            # ordering stays heap-driven.
            relay = SimEvent(self.engine, name=f"{self.name}:relay")
            relay.callbacks.append(self._resume)
            if target._exception is not None:
                relay.fail(target._exception)
            else:
                relay.succeed(target._value)
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target
