"""Deterministic, named random-number streams.

Each component draws from its own stream (derived from a root seed and a
stable name hash) so adding randomness to one component never perturbs the
draws seen by another — a standard trick for reproducible discrete-event
simulations.
"""

from __future__ import annotations

import hashlib
import random


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent named :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self.seed, name))
        return self._streams[name]

    def jitter(self, name: str, mean: float, rel_sigma: float = 0.02) -> float:
        """A positive duration near ``mean`` with relative spread ``rel_sigma``.

        Uses a lognormal so durations stay strictly positive; with the
        default 2% sigma this models the run-to-run variation of GPU kernels
        on an otherwise idle device.
        """
        if mean <= 0:
            raise ValueError(f"jitter mean must be positive, got {mean}")
        if rel_sigma <= 0:
            return mean
        return self.stream(name).lognormvariate(0.0, rel_sigma) * mean

    def numpy_stream(self, name: str):
        """A numpy ``RandomState`` over the same Mersenne Twister state as
        :meth:`stream`'s ``random.Random`` for ``name``.

        The generator state is copied verbatim (``getstate`` →
        ``set_state``), so the *uniform* draws are bit-identical to the
        scalar stream's ``random()`` sequence: both use MT19937 and the
        same 53-bit double recipe. Derived variates (``-log(1-u)/rate``
        and friends) may still differ in the last ulp because numpy's
        vectorized ``log``/``sin`` are not guaranteed to round like
        libm's — which is exactly why vectorized arrival generation is
        an opt-in (see :mod:`repro.serving.arrivals`).

        numpy is imported lazily so the simulation kernel itself stays
        numpy-free.
        """
        import numpy as np

        state = random.Random(_derive_seed(self.seed, name)).getstate()
        keys = state[1]
        rs = np.random.RandomState()
        rs.set_state(("MT19937", np.array(keys[:-1], dtype=np.uint32),
                      keys[-1]))
        return rs

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        return RandomStreams(_derive_seed(self.seed, f"spawn:{name}"))
