"""A bucketed ("calendar") event queue for the discrete-event engine.

The global binary heap in :class:`~repro.sim.engine.Engine` pays
``O(log n)`` per push/pop over the *whole* pending set. Serving runs at
10^6–10^7 requests keep hundreds of thousands of timeouts pending at
once, and most of them land within a short horizon of ``now`` — the
classic calendar-queue regime (Brown 1988). :class:`CalendarQueue`
splits the pending set into fixed-width time buckets so each push/pop
only pays ``log`` of one bucket's population plus ``log`` of the number
of *occupied* buckets.

Ordering is bit-identical to the global heap: items are the engine's
``(time, seq, event)`` tuples, the bucket index ``int(t / width)`` is
monotone non-decreasing in ``t`` (IEEE division by a positive constant
is order-preserving, and all event times are >= 0), so the minimum
occupied bucket always holds the globally minimum tuple, and within a
bucket the per-bucket heap applies the exact ``(time, seq)`` tie-break
the global heap would. The golden event-order tests in
``tests/sim/test_calqueue.py`` pin this equivalence.

Buckets are created lazily and dropped as they drain; a min-heap of
bucket indices (with lazy deletion of stale entries) finds the front
bucket without scanning.
"""

from __future__ import annotations

from heapq import heappop, heappush

#: Default bucket width in virtual seconds. Serving timeouts cluster at
#: the millisecond-to-centisecond scale, so 50 ms keeps buckets small
#: without creating one bucket per event.
DEFAULT_BUCKET_WIDTH = 0.05


class CalendarQueue:
    """Min-queue over ``(time, seq, event)`` tuples, bucketed by time.

    Drop-in replacement for the engine's event heap: ``push`` accepts
    the same tuples ``heappush`` would, ``pop`` returns them in the same
    total order ``heappop`` would.
    """

    __slots__ = ("width", "_buckets", "_indices", "_len")

    def __init__(self, bucket_width: float = DEFAULT_BUCKET_WIDTH):
        if bucket_width <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket_width}")
        self.width = bucket_width
        #: bucket index -> per-bucket heap of (time, seq, event)
        self._buckets: dict[int, list] = {}
        #: min-heap of bucket indices; may hold stale entries for
        #: buckets that drained (skipped lazily in :meth:`_front`)
        self._indices: list[int] = []
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def push(self, item: tuple) -> None:
        """Insert one ``(time, seq, event)`` tuple."""
        index = int(item[0] / self.width)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = bucket = []
            heappush(self._indices, index)
        heappush(bucket, item)
        self._len += 1

    def _front(self) -> list:
        """The heap of the minimum occupied bucket (stale indices skipped)."""
        buckets = self._buckets
        indices = self._indices
        while indices:
            bucket = buckets.get(indices[0])
            if bucket is not None:
                return bucket
            heappop(indices)
        raise IndexError("pop from an empty CalendarQueue")

    def pop(self) -> tuple:
        """Remove and return the minimum ``(time, seq, event)`` tuple."""
        bucket = self._front()
        item = heappop(bucket)
        if not bucket:
            # Drop the drained bucket; its index entry goes stale and is
            # skipped (or reused, if the bucket refills) by _front.
            del self._buckets[self._indices[0]]
        self._len -= 1
        return item

    def peek_time(self) -> float:
        """Time of the minimum item, or ``inf`` when empty."""
        if self._len == 0:
            return float("inf")
        return self._front()[0][0]
