"""Graph-analytics side tasks: PageRank and Graph SGD (paper 6.1.4).

Adapted conceptually from Gardenia's benchmarks: PageRank runs real power
iterations over a synthetic power-law graph (the Orkut stand-in), and
Graph SGD performs real stochastic matrix-factorization updates on a
sparse rating matrix. Each FreeRide step is one algorithm iteration, as
in the paper ("in each iteration, the graph algorithm runs over the input
graph for one step").

Both algorithms are fully deterministic in their constructor arguments,
and the paper's standard deployment replicates the *same* task on every
worker (and re-runs it across every sweep point). Re-executing the
identical iteration sequence once per replica dominated experiment time,
so each configuration shares one memoized trajectory: the first instance
to reach step ``k`` computes it, every later instance reads the recorded
result. The observable outputs (residuals, losses, rank vectors) are
bit-identical to an unshared run.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import calibration
from repro.core.interfaces import IterativeSideTask
from repro.workloads.datasets import SyntheticRatings, synthetic_power_law_graph

#: PageRank rank-vector checkpoints, for O(1)-ish historical reads without
#: holding every iterate in memory
_CHECKPOINT_EVERY = 128
#: rank-vector checkpoints kept per trajectory (beyond this, rank_at
#: reconstructs from the last one — a diagnostics-only path)
_MAX_CHECKPOINTS = 64
#: distinct configurations memoized per workload kind; exceeding this
#: (many distinct seeds in one process) restarts the cache
_MAX_TRAJECTORIES = 16


def _bounded(cache: dict) -> dict:
    if len(cache) >= _MAX_TRAJECTORIES:
        cache.clear()
    return cache


class _PageRankTrajectory:
    """The shared, extendable power-iteration sequence of one configuration."""

    def __init__(self, num_nodes: int, damping: float, seed: int):
        adjacency = synthetic_power_law_graph(num_nodes, seed=seed)
        out_degree = np.asarray(adjacency.sum(axis=1)).ravel()
        self.num_nodes = num_nodes
        self.damping = damping
        self.dangling = np.flatnonzero(out_degree == 0)
        scale = np.divide(
            1.0, out_degree, out=np.zeros_like(out_degree), where=out_degree > 0
        )
        self.transition = sp.diags(scale) @ adjacency
        # The step multiplies by the transpose; materialize it as CSR once
        # instead of re-deriving a CSC view on every iteration.
        self.transition_T = self.transition.T.tocsr()
        self._rank = np.full(num_nodes, 1.0 / num_nodes)
        self.residuals: list[float] = []
        self._checkpoints: dict[int, np.ndarray] = {0: self._rank}

    def ensure(self, steps: int) -> None:
        while len(self.residuals) < steps:
            updated, residual = self._advance(self._rank)
            self.residuals.append(residual)
            self._rank = updated
            done = len(self.residuals)
            if (done % _CHECKPOINT_EVERY == 0
                    and len(self._checkpoints) < _MAX_CHECKPOINTS):
                self._checkpoints[done] = updated

    def _advance(self, rank: np.ndarray) -> tuple[np.ndarray, float]:
        """One power iteration — arithmetic identical to the original task."""
        dangling_mass = rank[self.dangling].sum()
        updated = (
            self.damping * (self.transition_T @ rank)
            + self.damping * dangling_mass / self.num_nodes
            + (1.0 - self.damping) / self.num_nodes
        )
        return updated, float(np.abs(updated - rank).sum())

    def rank_at(self, step: int) -> np.ndarray:
        """The rank vector after ``step`` iterations (0 = initial)."""
        if step == len(self.residuals):
            return self._rank
        if step in self._checkpoints:
            return self._checkpoints[step]
        base = (step // _CHECKPOINT_EVERY) * _CHECKPOINT_EVERY
        while base not in self._checkpoints:  # beyond the checkpoint cap
            base -= _CHECKPOINT_EVERY
        rank = self._checkpoints[base]
        for _ in range(step - base):
            rank, _residual = self._advance(rank)
        return rank


_PAGERANK_TRAJECTORIES: dict[tuple[int, float, int], _PageRankTrajectory] = {}


class PageRankTask(IterativeSideTask):
    """Power-iteration PageRank; one step per FreeRide iteration."""

    def __init__(self, num_nodes: int = 2000, damping: float = 0.85,
                 seed: int = 0):
        super().__init__(calibration.PAGERANK)
        self.num_nodes = num_nodes
        self.damping = damping
        self.seed = seed
        self.residuals: list[float] = []
        self._trajectory: _PageRankTrajectory | None = None
        self._transition: sp.csr_matrix | None = None
        self._dangling: np.ndarray | None = None

    def create_side_task(self) -> None:
        key = (self.num_nodes, self.damping, self.seed)
        trajectory = _PAGERANK_TRAJECTORIES.get(key)
        if trajectory is None:
            cache = _bounded(_PAGERANK_TRAJECTORIES)
            trajectory = cache[key] = _PageRankTrajectory(*key)
        self._trajectory = trajectory
        self._transition = trajectory.transition
        self._dangling = trajectory.dangling
        self.host_loaded = True

    def compute_step(self) -> None:
        """One real power iteration; the residual history shows convergence."""
        step = len(self.residuals) + 1
        self._trajectory.ensure(step)
        self.residuals.append(self._trajectory.residuals[step - 1])

    def converged(self, tolerance: float = 1e-8) -> bool:
        return bool(self.residuals) and self.residuals[-1] < tolerance

    @property
    def rank_vector(self) -> np.ndarray:
        if self._trajectory is None:
            return None
        return self._trajectory.rank_at(len(self.residuals))


class _GraphSGDTrajectory:
    """The shared SGD loss sequence of one Graph SGD configuration."""

    def __init__(self, rank: int, batch_size: int, learning_rate: float,
                 regularization: float, seed: int):
        self.rank = rank
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.ratings = SyntheticRatings.generate(seed=seed)
        self._rng = np.random.default_rng(seed + 1)
        self.user_factors = (
            self._rng.normal(size=(self.ratings.num_users, rank)) * 0.1
        )
        self.item_factors = (
            self._rng.normal(size=(self.ratings.num_items, rank)) * 0.1
        )
        self.losses: list[float] = []

    def ensure(self, steps: int) -> None:
        while len(self.losses) < steps:
            self._step()

    def _step(self) -> None:
        """One SGD sweep — arithmetic identical to the original task."""
        ratings = self.ratings
        index = self._rng.integers(0, len(ratings.ratings), size=self.batch_size)
        users = ratings.users[index]
        items = ratings.items[index]
        truth = ratings.ratings[index]
        user_vecs = self.user_factors[users]
        item_vecs = self.item_factors[items]
        predicted = np.einsum("ij,ij->i", user_vecs, item_vecs)
        error = predicted - truth
        self.losses.append(float(np.mean(error**2)))
        grad_user = error[:, None] * item_vecs + self.regularization * user_vecs
        grad_item = error[:, None] * user_vecs + self.regularization * item_vecs
        np.subtract.at(
            self.user_factors, users, self.learning_rate * grad_user
        )
        np.subtract.at(
            self.item_factors, items, self.learning_rate * grad_item
        )


_GRAPH_SGD_TRAJECTORIES: dict[tuple, _GraphSGDTrajectory] = {}


class GraphSGDTask(IterativeSideTask):
    """Matrix-factorization SGD (Koren et al.); the paper's compute-hungry
    side task — 231% training-time increase when co-located via raw MPS."""

    def __init__(self, rank: int = 16, batch_size: int = 256,
                 learning_rate: float = 0.05, regularization: float = 0.02,
                 seed: int = 0):
        super().__init__(calibration.GRAPH_SGD)
        self.rank = rank
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.seed = seed
        self.losses: list[float] = []
        self._trajectory: _GraphSGDTrajectory | None = None

    def create_side_task(self) -> None:
        key = (self.rank, self.batch_size, self.learning_rate,
               self.regularization, self.seed)
        trajectory = _GRAPH_SGD_TRAJECTORIES.get(key)
        if trajectory is None:
            cache = _bounded(_GRAPH_SGD_TRAJECTORIES)
            trajectory = cache[key] = _GraphSGDTrajectory(*key)
        self._trajectory = trajectory
        self.host_loaded = True

    def compute_step(self) -> None:
        """One real SGD sweep over a sampled batch of ratings."""
        step = len(self.losses) + 1
        self._trajectory.ensure(step)
        self.losses.append(self._trajectory.losses[step - 1])

    @property
    def loss_improved(self) -> bool:
        if len(self.losses) < 20:
            return False
        return float(np.mean(self.losses[-10:])) < float(np.mean(self.losses[:10]))

    # Factor matrices live on the shared trajectory. They reflect the
    # trajectory's frontier step, which can be ahead of this instance's
    # own loss count when another replica has advanced further —
    # diagnostics only; losses remain per-instance exact.
    @property
    def _user_factors(self) -> np.ndarray | None:
        return None if self._trajectory is None else self._trajectory.user_factors

    @property
    def _item_factors(self) -> np.ndarray | None:
        return None if self._trajectory is None else self._trajectory.item_factors
