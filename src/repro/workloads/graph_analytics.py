"""Graph-analytics side tasks: PageRank and Graph SGD (paper 6.1.4).

Adapted conceptually from Gardenia's benchmarks: PageRank runs real power
iterations over a synthetic power-law graph (the Orkut stand-in), and
Graph SGD performs real stochastic matrix-factorization updates on a
sparse rating matrix. Each FreeRide step is one algorithm iteration, as
in the paper ("in each iteration, the graph algorithm runs over the input
graph for one step").
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import calibration
from repro.core.interfaces import IterativeSideTask
from repro.workloads.datasets import SyntheticRatings, synthetic_power_law_graph


class PageRankTask(IterativeSideTask):
    """Power-iteration PageRank; one step per FreeRide iteration."""

    def __init__(self, num_nodes: int = 2000, damping: float = 0.85,
                 seed: int = 0):
        super().__init__(calibration.PAGERANK)
        self.num_nodes = num_nodes
        self.damping = damping
        self.seed = seed
        self.residuals: list[float] = []
        self._transition: sp.csr_matrix | None = None
        self._rank: np.ndarray | None = None
        self._dangling: np.ndarray | None = None

    def create_side_task(self) -> None:
        adjacency = synthetic_power_law_graph(self.num_nodes, seed=self.seed)
        out_degree = np.asarray(adjacency.sum(axis=1)).ravel()
        self._dangling = out_degree == 0
        scale = np.divide(
            1.0, out_degree, out=np.zeros_like(out_degree), where=out_degree > 0
        )
        self._transition = sp.diags(scale) @ adjacency
        self._rank = np.full(self.num_nodes, 1.0 / self.num_nodes)
        self.host_loaded = True

    def compute_step(self) -> None:
        """One real power iteration; the residual history shows convergence."""
        rank = self._rank
        dangling_mass = rank[self._dangling].sum()
        updated = (
            self.damping * (self._transition.T @ rank)
            + self.damping * dangling_mass / self.num_nodes
            + (1.0 - self.damping) / self.num_nodes
        )
        self.residuals.append(float(np.abs(updated - rank).sum()))
        self._rank = updated

    @property
    def converged(self, tolerance: float = 1e-8) -> bool:
        return bool(self.residuals) and self.residuals[-1] < tolerance

    @property
    def rank_vector(self) -> np.ndarray:
        return self._rank


class GraphSGDTask(IterativeSideTask):
    """Matrix-factorization SGD (Koren et al.); the paper's compute-hungry
    side task — 231% training-time increase when co-located via raw MPS."""

    def __init__(self, rank: int = 16, batch_size: int = 256,
                 learning_rate: float = 0.05, regularization: float = 0.02,
                 seed: int = 0):
        super().__init__(calibration.GRAPH_SGD)
        self.rank = rank
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.seed = seed
        self.losses: list[float] = []
        self._ratings: SyntheticRatings | None = None
        self._user_factors: np.ndarray | None = None
        self._item_factors: np.ndarray | None = None
        self._rng: np.random.Generator | None = None

    def create_side_task(self) -> None:
        self._ratings = SyntheticRatings.generate(seed=self.seed)
        self._rng = np.random.default_rng(self.seed + 1)
        self._user_factors = (
            self._rng.normal(size=(self._ratings.num_users, self.rank)) * 0.1
        )
        self._item_factors = (
            self._rng.normal(size=(self._ratings.num_items, self.rank)) * 0.1
        )
        self.host_loaded = True

    def compute_step(self) -> None:
        """One real SGD sweep over a sampled batch of ratings."""
        ratings = self._ratings
        index = self._rng.integers(0, len(ratings.ratings), size=self.batch_size)
        users = ratings.users[index]
        items = ratings.items[index]
        truth = ratings.ratings[index]
        user_vecs = self._user_factors[users]
        item_vecs = self._item_factors[items]
        predicted = np.einsum("ij,ij->i", user_vecs, item_vecs)
        error = predicted - truth
        self.losses.append(float(np.mean(error**2)))
        grad_user = error[:, None] * item_vecs + self.regularization * user_vecs
        grad_item = error[:, None] * user_vecs + self.regularization * item_vecs
        np.subtract.at(
            self._user_factors, users, self.learning_rate * grad_user
        )
        np.subtract.at(
            self._item_factors, items, self.learning_rate * grad_item
        )

    @property
    def loss_improved(self) -> bool:
        if len(self.losses) < 20:
            return False
        return float(np.mean(self.losses[-10:])) < float(np.mean(self.losses[:10]))
