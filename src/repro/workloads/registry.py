"""Name-based access to the paper's six side tasks.

``workload_factory("resnet18")`` returns a zero-argument callable building
a fresh task instance — the form :meth:`repro.core.middleware.FreeRide.submit`
expects, so one profiling pass and one serving instance never share state.
"""

from __future__ import annotations

import typing

from repro.core.interfaces import ImperativeSideTask, IterativeSideTask
from repro.workloads.adapters import ImperativeAdapter
from repro.workloads.graph_analytics import GraphSGDTask, PageRankTask
from repro.workloads.image_processing import ImageTask
from repro.workloads.model_training import make_resnet18, make_resnet50, make_vgg19

WORKLOAD_NAMES = (
    "resnet18",
    "resnet50",
    "vgg19",
    "pagerank",
    "graph_sgd",
    "image",
)


def make_workload(
    name: str,
    batch_size: int = 64,
    seed: int = 0,
    interface: str = "iterative",
) -> "IterativeSideTask | ImperativeSideTask":
    """Build one side-task instance by name."""
    builders: dict[str, typing.Callable[[], IterativeSideTask]] = {
        "resnet18": lambda: make_resnet18(batch_size, seed),
        "resnet50": lambda: make_resnet50(batch_size, seed),
        "vgg19": lambda: make_vgg19(batch_size, seed),
        "pagerank": lambda: PageRankTask(seed=seed),
        "graph_sgd": lambda: GraphSGDTask(seed=seed),
        "image": lambda: ImageTask(seed=seed),
    }
    if name not in builders:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(builders)}"
        )
    task = builders[name]()
    if interface == "imperative":
        return ImperativeAdapter(task)
    if interface != "iterative":
        raise ValueError(f"unknown interface {interface!r}")
    return task


def workload_factory(
    name: str,
    batch_size: int = 64,
    seed: int = 0,
    interface: str = "iterative",
) -> typing.Callable[[], "IterativeSideTask | ImperativeSideTask"]:
    """A zero-argument factory for :meth:`FreeRide.submit`."""
    return lambda: make_workload(name, batch_size, seed, interface)
