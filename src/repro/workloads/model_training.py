"""Model-training side tasks: ResNet18, ResNet50, VGG19 (paper 6.1.4).

The paper trains out-of-the-box torchvision models. Here the virtual cost
of each step follows the calibrated profile (e.g. ResNet18 batch 64:
30.4 ms and 2.63 GB, section 2.3), while the computation inside the step
is a real softmax-regression SGD update on synthetic data — a stand-in
documented in DESIGN.md. The loss trajectory is recorded so tests can
assert that training genuinely progresses through pause/resume cycles.
"""

from __future__ import annotations

import numpy as np

from repro import calibration
from repro.core.interfaces import IterativeSideTask
from repro.workloads.datasets import SyntheticClassificationData


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class _SgdTrajectory:
    """The shared deterministic loss sequence of one SGD configuration.

    The stand-in computation depends only on ``(batch_size, learning_rate,
    seed)`` — not on which torchvision model the profile describes — so one
    trajectory serves every replica of ResNet18/ResNet50/VGG19 alike, and
    every sweep point re-reads it instead of re-running the updates.
    """

    def __init__(self, batch_size: int, learning_rate: float, seed: int):
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self._data = SyntheticClassificationData.generate(seed=seed)
        self._rng = np.random.default_rng(seed + 1)
        dimensions = self._data.features.shape[1]
        self._weights = np.zeros((dimensions, self._data.num_classes))
        self._bias = np.zeros(self._data.num_classes)
        self.losses: list[float] = []

    def ensure(self, steps: int) -> None:
        while len(self.losses) < steps:
            self._step()

    def _step(self) -> None:
        """One SGD step — arithmetic identical to the original task."""
        features, labels = self._data.batch(self.batch_size, self._rng)
        logits = features @ self._weights + self._bias
        probabilities = _softmax(logits)
        one_hot = np.eye(self._data.num_classes)[labels]
        loss = -np.mean(
            np.log(probabilities[np.arange(len(labels)), labels] + 1e-12)
        )
        gradient = (probabilities - one_hot) / len(labels)
        self._weights -= self.learning_rate * (features.T @ gradient)
        self._bias -= self.learning_rate * gradient.sum(axis=0)
        self.losses.append(float(loss))


_SGD_TRAJECTORIES: dict[tuple[int, float, int], _SgdTrajectory] = {}


class ModelTrainingTask(IterativeSideTask):
    """One of the paper's model-training side tasks."""

    def __init__(
        self,
        profile: calibration.SideTaskProfile,
        batch_size: int = 64,
        learning_rate: float = 0.05,
        seed: int = 0,
    ):
        if batch_size != 64:
            profile = calibration.scale_model_training_profile(profile, batch_size)
        super().__init__(profile)
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.losses: list[float] = []
        self._trajectory: _SgdTrajectory | None = None

    # -- life-cycle hooks -------------------------------------------------
    def create_side_task(self) -> None:
        """CREATED: dataset, model and optimizer state in host memory."""
        key = (self.batch_size, self.learning_rate, self.seed)
        trajectory = _SGD_TRAJECTORIES.get(key)
        if trajectory is None:
            if len(_SGD_TRAJECTORIES) >= 16:  # many distinct configs: restart
                _SGD_TRAJECTORIES.clear()
            trajectory = _SGD_TRAJECTORIES[key] = _SgdTrajectory(*key)
        self._trajectory = trajectory
        self.host_loaded = True

    def compute_step(self) -> None:
        """One real SGD step; the loss history proves forward progress."""
        step = len(self.losses) + 1
        self._trajectory.ensure(step)
        self.losses.append(self._trajectory.losses[step - 1])

    # -- diagnostics -------------------------------------------------------
    @property
    def loss_improved(self) -> bool:
        """Mean of the last 10 losses below the mean of the first 10."""
        if len(self.losses) < 20:
            return False
        return float(np.mean(self.losses[-10:])) < float(np.mean(self.losses[:10]))


def make_resnet18(batch_size: int = 64, seed: int = 0) -> ModelTrainingTask:
    return ModelTrainingTask(calibration.RESNET18, batch_size, seed=seed)


def make_resnet50(batch_size: int = 64, seed: int = 0) -> ModelTrainingTask:
    return ModelTrainingTask(calibration.RESNET50, batch_size, seed=seed)


def make_vgg19(batch_size: int = 64, seed: int = 0) -> ModelTrainingTask:
    return ModelTrainingTask(calibration.VGG19, batch_size, seed=seed)
