"""Model-training side tasks: ResNet18, ResNet50, VGG19 (paper 6.1.4).

The paper trains out-of-the-box torchvision models. Here the virtual cost
of each step follows the calibrated profile (e.g. ResNet18 batch 64:
30.4 ms and 2.63 GB, section 2.3), while the computation inside the step
is a real softmax-regression SGD update on synthetic data — a stand-in
documented in DESIGN.md. The loss trajectory is recorded so tests can
assert that training genuinely progresses through pause/resume cycles.
"""

from __future__ import annotations

import numpy as np

from repro import calibration
from repro.core.interfaces import IterativeSideTask
from repro.workloads.datasets import SyntheticClassificationData


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class ModelTrainingTask(IterativeSideTask):
    """One of the paper's model-training side tasks."""

    def __init__(
        self,
        profile: calibration.SideTaskProfile,
        batch_size: int = 64,
        learning_rate: float = 0.05,
        seed: int = 0,
    ):
        if batch_size != 64:
            profile = calibration.scale_model_training_profile(profile, batch_size)
        super().__init__(profile)
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.losses: list[float] = []
        self._data: SyntheticClassificationData | None = None
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None
        self._rng: np.random.Generator | None = None

    # -- life-cycle hooks -------------------------------------------------
    def create_side_task(self) -> None:
        """CREATED: dataset, model and optimizer state in host memory."""
        self._data = SyntheticClassificationData.generate(seed=self.seed)
        self._rng = np.random.default_rng(self.seed + 1)
        dimensions = self._data.features.shape[1]
        self._weights = np.zeros((dimensions, self._data.num_classes))
        self._bias = np.zeros(self._data.num_classes)
        self.host_loaded = True

    def compute_step(self) -> None:
        """One real SGD step; the loss history proves forward progress."""
        features, labels = self._data.batch(self.batch_size, self._rng)
        logits = features @ self._weights + self._bias
        probabilities = _softmax(logits)
        one_hot = np.eye(self._data.num_classes)[labels]
        loss = -np.mean(
            np.log(probabilities[np.arange(len(labels)), labels] + 1e-12)
        )
        gradient = (probabilities - one_hot) / len(labels)
        self._weights -= self.learning_rate * (features.T @ gradient)
        self._bias -= self.learning_rate * gradient.sum(axis=0)
        self.losses.append(float(loss))

    # -- diagnostics -------------------------------------------------------
    @property
    def loss_improved(self) -> bool:
        """Mean of the last 10 losses below the mean of the first 10."""
        if len(self.losses) < 20:
            return False
        return float(np.mean(self.losses[-10:])) < float(np.mean(self.losses[:10]))


def make_resnet18(batch_size: int = 64, seed: int = 0) -> ModelTrainingTask:
    return ModelTrainingTask(calibration.RESNET18, batch_size, seed=seed)


def make_resnet50(batch_size: int = 64, seed: int = 0) -> ModelTrainingTask:
    return ModelTrainingTask(calibration.RESNET50, batch_size, seed=seed)


def make_vgg19(batch_size: int = 64, seed: int = 0) -> ModelTrainingTask:
    return ModelTrainingTask(calibration.VGG19, batch_size, seed=seed)
