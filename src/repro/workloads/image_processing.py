"""Image-processing side task: resize + watermark (paper 6.1.4).

"The image processing (Image) side task resizes an input image and adds a
watermark, which we adapt from Nvidia's code." One FreeRide step processes
one image: a real bilinear down-scale to half resolution followed by a
real alpha-blended watermark in the corner.
"""

from __future__ import annotations

import numpy as np

from repro import calibration
from repro.core.interfaces import IterativeSideTask
from repro.workloads.datasets import SyntheticImages


def bilinear_resize(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Real bilinear interpolation, vectorized with numpy."""
    src_h, src_w = image.shape[:2]
    rows = (np.arange(height) + 0.5) * src_h / height - 0.5
    cols = (np.arange(width) + 0.5) * src_w / width - 0.5
    rows = np.clip(rows, 0, src_h - 1)
    cols = np.clip(cols, 0, src_w - 1)
    row0 = np.floor(rows).astype(int)
    col0 = np.floor(cols).astype(int)
    row1 = np.minimum(row0 + 1, src_h - 1)
    col1 = np.minimum(col0 + 1, src_w - 1)
    row_frac = (rows - row0)[:, None, None]
    col_frac = (cols - col0)[None, :, None]
    img = image.astype(np.float64)
    top = img[row0][:, col0] * (1 - col_frac) + img[row0][:, col1] * col_frac
    bottom = img[row1][:, col0] * (1 - col_frac) + img[row1][:, col1] * col_frac
    resized = top * (1 - row_frac) + bottom * row_frac
    return resized.astype(image.dtype)


def add_watermark(image: np.ndarray, mark: np.ndarray, alpha: float = 0.4) -> np.ndarray:
    """Alpha-blend ``mark`` into the bottom-right corner of ``image``."""
    out = image.copy()
    mark_h, mark_w = mark.shape[:2]
    region = out[-mark_h:, -mark_w:].astype(np.float64)
    blended = (1 - alpha) * region + alpha * mark.astype(np.float64)
    out[-mark_h:, -mark_w:] = blended.astype(image.dtype)
    return out


#: processed outputs per (image_count, seed): the pool is cyclic, so step k
#: produces the same image as step k - image_count — compute each once
_OUTPUT_CACHE: dict[tuple[int, int], dict[int, np.ndarray]] = {}


class ImageTask(IterativeSideTask):
    """Resize + watermark; one image per step."""

    def __init__(self, image_count: int = 32, total_images: int | None = None,
                 seed: int = 0):
        super().__init__(calibration.IMAGE)
        self.image_count = image_count
        #: None = endless; otherwise the task finishes after this many
        self.total_images = total_images
        self.seed = seed
        self.processed: int = 0
        self.last_output: np.ndarray | None = None
        self._pool: SyntheticImages | None = None
        self._mark: np.ndarray | None = None
        self._outputs: dict[int, np.ndarray] | None = None

    def create_side_task(self) -> None:
        self._pool = SyntheticImages(count=self.image_count, seed=self.seed)
        rng = np.random.default_rng(self.seed + 7)
        self._mark = rng.integers(0, 256, size=(32, 32, 3), dtype=np.uint8)
        if len(_OUTPUT_CACHE) >= 16 and (self.image_count, self.seed) not in _OUTPUT_CACHE:
            _OUTPUT_CACHE.clear()  # many distinct configs: restart
        self._outputs = _OUTPUT_CACHE.setdefault((self.image_count, self.seed), {})
        self.host_loaded = True

    def compute_step(self) -> None:
        image = self._pool.next_image()
        cursor = self.processed % len(self._pool)
        output = self._outputs.get(cursor)
        if output is None:
            resized = bilinear_resize(
                image, image.shape[0] // 2, image.shape[1] // 2
            )
            output = self._outputs[cursor] = add_watermark(resized, self._mark)
        self.last_output = output
        self.processed += 1

    @property
    def is_finished(self) -> bool:
        return self.total_images is not None and self.processed >= self.total_images
