"""Misbehaving side tasks for the resource-limit demonstrations (Fig. 8).

* :class:`NonPausingTask` — its *measured* profile promises short steps,
  but at run time each step launches a kernel far longer than any bubble,
  so a pause initiated at a bubble's end cannot take effect and the
  framework-enforced mechanism must SIGKILL it after the grace period
  (Figure 8a).
* :class:`MemoryLeakTask` — allocates more GPU memory every step until it
  crosses its MPS limit and is OOM-killed, leaving the training process
  untouched (Figure 8b).
"""

from __future__ import annotations

import dataclasses

from repro import calibration
from repro.core.interfaces import IterativeSideTask, SideTaskContext


class NonPausingTask(IterativeSideTask):
    """Claims 30 ms steps, actually runs kernels of ``actual_kernel_s``."""

    def __init__(self, actual_kernel_s: float = 5.0):
        # The profile the automated profiler will measure is forged by
        # keeping the first probe steps short: the task behaves only after
        # `honest_steps` steps — a deliberately adversarial workload.
        super().__init__(calibration.RESNET18, name="non-pausing")
        self.actual_kernel_s = actual_kernel_s
        self.honest_steps = 16

    def compute_step(self) -> None:
        pass

    def run_next_step(self, ctx: SideTaskContext):
        if self.steps_done < self.honest_steps:
            yield from super().run_next_step(ctx)
            return
        # Misbehave: one giant kernel that ignores every bubble boundary.
        yield ctx.proc.launch_kernel(
            work_s=self.actual_kernel_s,
            sm_demand=self.perf.sm_demand,
            name=f"{self.name}:runaway",
        )
        self._account_step()


class MemoryLeakTask(IterativeSideTask):
    """Leaks ``leak_gb_per_step`` of GPU memory every step."""

    def __init__(self, leak_gb_per_step: float = 1.0):
        profile = dataclasses.replace(
            calibration.RESNET18, memory_gb=2.0, step_time_s=0.03
        )
        super().__init__(profile, name="memory-leak")
        self.leak_gb_per_step = leak_gb_per_step

    def compute_step(self) -> None:
        pass

    def run_next_step(self, ctx: SideTaskContext):
        yield from super().run_next_step(ctx)
        # The leak: allocate and never free. Crossing the MPS limit raises
        # an OOM that kills this process only.
        ctx.proc.allocate(self.leak_gb_per_step)
