"""Expose any iterative workload through the imperative interface.

The paper implements every side task "using both the iterative and the
imperative interfaces of FreeRide" (section 6.1.4). Rather than duplicate
each workload, :class:`ImperativeAdapter` runs an iterative task's
compute core inside a monolithic ``run_gpu_workload`` body — which is
exactly the imperative programming model: same logic, no step boundaries
visible to the middleware.
"""

from __future__ import annotations

from repro.core.interfaces import ImperativeSideTask, IterativeSideTask, SideTaskContext


class FiniteJob(IterativeSideTask):
    """Run an iterative workload for a fixed number of steps.

    The batch experiments serve endless tasks (throughput is the metric);
    a serving request is a *job* that completes, so its completion
    latency is well defined. ``is_finished`` trips after ``job_steps``
    steps, or earlier if the inner workload finishes on its own.
    """

    def __init__(self, inner: IterativeSideTask, job_steps: int):
        if job_steps < 1:
            raise ValueError(f"job must run at least one step, got {job_steps}")
        super().__init__(inner.perf, name=f"{inner.name}-x{job_steps}")
        self.inner = inner
        self.job_steps = job_steps

    def create_side_task(self) -> None:
        self.inner.create_side_task()
        self.host_loaded = True

    def compute_step(self) -> None:
        self.inner.compute_step()
        # keep the inner task's own accounting in step with ours
        self.inner._account_step()

    def checkpoint_state(self) -> dict:
        snapshot = super().checkpoint_state()
        snapshot["inner"] = self.inner.checkpoint_state()
        return snapshot

    def restore_state(self, snapshot: dict) -> None:
        super().restore_state(snapshot)
        self.inner.restore_state(snapshot["inner"])

    @property
    def is_finished(self) -> bool:
        return self.steps_done >= self.job_steps or self.inner.is_finished


class ImperativeAdapter(ImperativeSideTask):
    """Wraps an :class:`IterativeSideTask` as an imperative workload."""

    def __init__(self, inner: IterativeSideTask):
        super().__init__(inner.perf, name=f"{inner.name}-imperative")
        self.inner = inner

    def create_side_task(self) -> None:
        self.inner.create_side_task()
        self.host_loaded = True

    def init_side_task(self, ctx: SideTaskContext) -> None:
        super().init_side_task(ctx)

    def compute_step(self) -> None:
        self.inner.compute_step()
        # keep the inner task's own accounting in step with ours
        self.inner._account_step()

    def checkpoint_state(self) -> dict:
        snapshot = super().checkpoint_state()
        snapshot["inner"] = self.inner.checkpoint_state()
        return snapshot

    def restore_state(self, snapshot: dict) -> None:
        super().restore_state(snapshot)
        self.inner.restore_state(snapshot["inner"])

    @property
    def is_finished(self) -> bool:
        return self.inner.is_finished
