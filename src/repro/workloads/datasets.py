"""Synthetic datasets for the side tasks.

The paper uses the Orkut social graph (graph analytics), torchvision image
batches (model training) and JPEG images (image processing). None of those
assets ship with this reproduction, so each gets a synthetic stand-in with
the same structural properties: a power-law graph for PageRank/SGD, a
separable Gaussian-mixture classification set for the training tasks, and
RGB images for the watermark task. Sizes are kept small because the
*virtual* cost of a step comes from the calibrated profile, not from the
stand-in's wall-clock time.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np
import scipy.sparse as sp


def synthetic_power_law_graph(
    num_nodes: int = 2000, edges_per_node: int = 8, seed: int = 0
) -> sp.csr_matrix:
    """A directed power-law graph as a CSR adjacency matrix.

    Preferential attachment (Barabási–Albert flavoured) gives the heavy
    tailed degree distribution of social graphs such as Orkut.

    Generation is deterministic in its arguments, so repeated calls (every
    profiling probe and every replica builds its own task instance) share
    one cached build; each caller gets an independent copy it may mutate.
    """
    return _cached_power_law_graph(num_nodes, edges_per_node, seed).copy()


@functools.lru_cache(maxsize=16)
def _cached_power_law_graph(
    num_nodes: int, edges_per_node: int, seed: int
) -> sp.csr_matrix:
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {num_nodes}")
    rng = np.random.default_rng(seed)
    sources: list[int] = []
    targets: list[int] = []
    # attachment pool: node ids repeated once per incident edge
    pool = [0, 1]
    sources.append(0)
    targets.append(1)
    for node in range(2, num_nodes):
        fanout = min(edges_per_node, node)
        picks = rng.choice(len(pool), size=fanout)
        chosen = {pool[int(index)] for index in picks}
        for target in chosen:
            sources.append(node)
            targets.append(target)
            pool.append(target)
        pool.append(node)
    data = np.ones(len(sources), dtype=np.float64)
    adjacency = sp.csr_matrix(
        (data, (np.array(sources), np.array(targets))),
        shape=(num_nodes, num_nodes),
    )
    adjacency.sum_duplicates()
    return adjacency


@dataclasses.dataclass
class SyntheticClassificationData:
    """Gaussian blobs: linearly separable enough for loss to fall fast."""

    features: np.ndarray
    labels: np.ndarray
    num_classes: int

    @classmethod
    @functools.lru_cache(maxsize=16)
    def generate(
        cls,
        samples: int = 2048,
        dimensions: int = 32,
        num_classes: int = 4,
        seed: int = 0,
    ) -> "SyntheticClassificationData":
        """Build (or return the cached) dataset for these arguments.

        The returned instance is shared: callers treat ``features`` and
        ``labels`` as read-only (training state lives in the tasks).
        """
        rng = np.random.default_rng(seed)
        centers = rng.normal(scale=3.0, size=(num_classes, dimensions))
        labels = rng.integers(0, num_classes, size=samples)
        features = centers[labels] + rng.normal(size=(samples, dimensions))
        return cls(features=features, labels=labels, num_classes=num_classes)

    def batch(self, size: int, rng: np.random.Generator):
        index = rng.integers(0, len(self.labels), size=size)
        return self.features[index], self.labels[index]


@dataclasses.dataclass
class SyntheticRatings:
    """A sparse user-item rating matrix for matrix-factorization SGD."""

    users: np.ndarray
    items: np.ndarray
    ratings: np.ndarray
    num_users: int
    num_items: int

    @classmethod
    @functools.lru_cache(maxsize=16)
    def generate(
        cls,
        num_users: int = 512,
        num_items: int = 512,
        num_ratings: int = 8192,
        rank: int = 8,
        seed: int = 0,
    ) -> "SyntheticRatings":
        """Build (or return the cached) ratings; arrays are read-only."""
        rng = np.random.default_rng(seed)
        true_user = rng.normal(size=(num_users, rank)) / np.sqrt(rank)
        true_item = rng.normal(size=(num_items, rank)) / np.sqrt(rank)
        users = rng.integers(0, num_users, size=num_ratings)
        items = rng.integers(0, num_items, size=num_ratings)
        noise = rng.normal(scale=0.05, size=num_ratings)
        ratings = np.einsum("ij,ij->i", true_user[users], true_item[items]) + noise
        return cls(
            users=users,
            items=items,
            ratings=ratings,
            num_users=num_users,
            num_items=num_items,
        )


@functools.lru_cache(maxsize=16)
def _cached_image_pool(
    count: int, height: int, width: int, seed: int
) -> tuple[np.ndarray, ...]:
    rng = np.random.default_rng(seed)
    return tuple(
        rng.integers(0, 256, size=(height, width, 3), dtype=np.uint8)
        for _ in range(count)
    )


class SyntheticImages:
    """A cyclic pool of RGB images for the resize + watermark task.

    The images themselves are cached per configuration and shared between
    pools (consumers treat them as read-only); the cursor is per-instance.
    """

    def __init__(self, count: int = 32, height: int = 256, width: int = 256,
                 seed: int = 0):
        self.images = list(_cached_image_pool(count, height, width, seed))
        self._cursor = 0

    def next_image(self) -> np.ndarray:
        image = self.images[self._cursor % len(self.images)]
        self._cursor += 1
        return image

    def __len__(self) -> int:
        return len(self.images)
