"""The paper's six evaluation side tasks, with real computations.

Model training (ResNet18 / ResNet50 / VGG19), graph analytics (PageRank
and Graph SGD, adapted conceptually from Gardenia), and image processing
(resize + watermark, after Nvidia's nvJPEG sample) — each implemented
against the FreeRide iterative interface, with an adapter that exposes any
of them through the imperative interface as well (section 6.1.4 evaluates
both).

The *virtual-time* cost of each step follows the calibrated profile in
:mod:`repro.calibration`; the *computation* inside each step is real —
PageRank converges, the training losses fall, the images come out
watermarked — so the step API demonstrably carries real work.
"""

from repro.workloads.adapters import ImperativeAdapter
from repro.workloads.datasets import (
    SyntheticClassificationData,
    SyntheticImages,
    SyntheticRatings,
    synthetic_power_law_graph,
)
from repro.workloads.graph_analytics import GraphSGDTask, PageRankTask
from repro.workloads.image_processing import ImageTask
from repro.workloads.misbehaving import MemoryLeakTask, NonPausingTask
from repro.workloads.model_training import (
    ModelTrainingTask,
    make_resnet18,
    make_resnet50,
    make_vgg19,
)
from repro.workloads.registry import WORKLOAD_NAMES, make_workload, workload_factory

__all__ = [
    "GraphSGDTask",
    "ImageTask",
    "ImperativeAdapter",
    "MemoryLeakTask",
    "ModelTrainingTask",
    "NonPausingTask",
    "PageRankTask",
    "SyntheticClassificationData",
    "SyntheticImages",
    "SyntheticRatings",
    "WORKLOAD_NAMES",
    "make_resnet18",
    "make_resnet50",
    "make_vgg19",
    "make_workload",
    "synthetic_power_law_graph",
    "workload_factory",
]
