"""Paper-derived calibration constants.

Every number in this module is either quoted directly from the FreeRide
paper (Middleware '25) or fitted to a number the paper reports, with the
source noted inline. The rest of the library treats these as opaque model
parameters; to re-calibrate against different hardware, edit only this file.

The reproduction runs on a simulated substrate, so absolute values matter
less than ratios and shapes (see DESIGN.md section 6); nonetheless we keep
the absolute scales close to the paper so printed tables are comparable.
"""

from __future__ import annotations

import dataclasses

# ---------------------------------------------------------------------------
# Servers and prices (paper section 6.1.1, prices as of June 2024)
# ---------------------------------------------------------------------------

#: Server-I: 4x RTX 6000 Ada, 48 GB each, $3.96/hour.
SERVER_I_PRICE_PER_HOUR = 3.96
SERVER_I_NUM_GPUS = 4
SERVER_I_GPU_MEMORY_GB = 48.0

#: Server-II: 1x RTX 3080, 10 GB, $0.18/hour.
SERVER_II_PRICE_PER_HOUR = 0.18
SERVER_II_GPU_MEMORY_GB = 10.0

#: Server-CPU: 8 cores of a Xeon Platinum 8269Y. The paper quotes no price
#: (it is not used in the cost-savings formula); we assume a typical
#: community-cloud CPU instance price for completeness.
SERVER_CPU_PRICE_PER_HOUR = 0.08

# ---------------------------------------------------------------------------
# Pipeline training (paper sections 2.2 and 6.1.3)
# ---------------------------------------------------------------------------

#: 4-stage pipeline, one GPU per stage.
NUM_STAGES = 4

#: Default number of micro-batches per epoch (Figures 1 and 2); the
#: sensitivity study also uses 6 and 8 (Figure 7e,f).
DEFAULT_MICRO_BATCHES = 4

#: Backward propagation takes about twice as long as forward propagation
#: ("BP operations typically take longer than FP operations", section 2.2.1,
#: citing Alpa); 2.0 reproduces the paper's Type-C bubble duration equal to
#: one FP time.
BP_OVER_FP_RATIO = 2.0

#: Per-micro-batch forward-propagation time (seconds) for each model size.
#: Fitted so that (a) epoch times fall and (b) total per-stage bubble time
#: falls as the model grows (Figure 2b) — the paper maximizes the
#: micro-batch *size* before OOM, so larger models run smaller micro-batches
#: and each op gets faster. The 3.6B value also reproduces the paper's
#: bubble-duration range of roughly 0.22-1.04 s (section 2.2.1).
FP_TIME_BY_MODEL_B = {1.2: 0.26, 3.6: 0.22, 6.0: 0.18}

#: Per-epoch optimizer/synchronization time, seconds per billion parameters,
#: applied on every stage concurrently at the end of an epoch. This busy
#: (non-bubble) phase reproduces the gentle bubble-rate slope of Figure 2b:
#: 42.4% at 1.2B falling to about 40.4% at 6B.
OPTIMIZER_TIME_PER_BILLION = 0.049

#: Bytes per parameter held on each stage for weights + gradients + Adam
#: state (fp16 weights/grads plus fp32 moments and master copy, the
#: DeepSpeed default mixed-precision layout).
BYTES_PER_PARAM = 16

#: Activation memory (GB) per in-flight micro-batch for each model size.
#: Fitted so that, with the 1F1B in-flight rule min(M, S - stage), stage 0
#: sits just below the 48 GB capacity ("we always maximize the micro-batch
#: size until just before OOM", section 6.1.3) and available-per-bubble
#: memory matches section 2.2: "<3 GB" at stage 0 to ">20 GB" at stage 3
#: for the 3.6B model, with larger models leaving less available memory
#: (Figure 2a).
ACTIVATION_GB_PER_MICRO_BATCH = {1.2: 10.0, 3.6: 7.65, 6.0: 5.75}

#: Relative jitter (lognormal sigma) applied to op durations; small, so the
#: pipeline stays "stable and repetitive" (paper section 8) while profiling
#: still has something to average over.
OP_TIME_REL_JITTER = 0.01

#: Time the instrumented training process spends reporting one bubble to the
#: side-task manager (the "55 lines of code" hook plus the RPC). Fitted so
#: the iterative interface lands near the paper's ~1% time increase.
INSTRUMENTATION_OVERHEAD_S = 0.005

# ---------------------------------------------------------------------------
# FreeRide middleware timing
# ---------------------------------------------------------------------------

#: One-way RPC latency between manager, workers and tasks (gRPC on
#: localhost is sub-millisecond to ~1 ms).
RPC_LATENCY_S = 0.001

#: Grace period of the framework-enforced mechanism before the worker
#: SIGKILLs a task that failed to pause (section 4.5; fitted to the ~0.5 s
#: gap visible in Figure 8a).
GRACE_PERIOD_S = 0.5

#: Polling interval of the side-task manager's Algorithm-2 loop.
MANAGER_POLL_INTERVAL_S = 0.002

#: Extra delay for a SIGTSTP to take effect on the imperative interface
#: (signal delivery plus the Python-level handler), before counting any
#: still-running CUDA kernels. Fitted to the imperative rows of Table 2.
SIGNAL_PAUSE_LATENCY_S = 0.010

#: Safety margin the program-directed mechanism adds on top of the profiled
#: per-step duration when deciding whether a step still fits in the bubble.
STEP_FIT_SAFETY_MARGIN = 0.10

#: Per-step cost of the iterative interface itself: checking for pending
#: state-transition RPCs and book-keeping between RunNextStep calls. This
#: is part of the "FreeRide runtime" share of Figure 9 — proportionally
#: largest for short-step tasks such as PageRank.
ITERATIVE_STEP_OVERHEAD_S = 0.0005

#: Latency between a StartSideTask transition landing on the task process
#: and its first kernel reaching the GPU: Python interface dispatch, CUDA
#: context reactivation, and scheduler warm-up. Charged once per bubble;
#: together with the per-step overhead it reproduces the paper's Figure 9
#: finding that a visible share of each bubble goes to FreeRide runtime
#: rather than side-task execution.
TASK_RESUME_LATENCY_S = 0.040

#: Host-to-device transfer bandwidth used when InitSideTask loads the task
#: context into GPU memory (PCIe 4.0 x16 practical throughput).
H2D_BANDWIDTH_GB_S = 25.0

# ---------------------------------------------------------------------------
# Side-task profiles (sections 2.3, 6.1.4; Tables 1 and 2; Figure 9)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SideTaskProfile:
    """Calibrated characteristics of one of the paper's six side tasks.

    ``step_time_s`` and ``memory_gb`` play the role of the measurements the
    automated profiler extracts in section 4.3; the speed factors place the
    same workload on Server-II / Server-CPU (Table 1); the interference
    coefficients reproduce the co-location overheads of Table 2 for the MPS
    and naive baselines.
    """

    name: str
    #: Seconds per step when running alone on a Server-I GPU.
    step_time_s: float
    #: GPU memory the task allocates once initialized (GB).
    memory_gb: float
    #: Work units per step ("iterations" in Table 1: images for the model
    #: training tasks, algorithm iterations for the rest).
    units_per_step: float
    #: Fraction of wall time the task keeps kernels on the GPU when running
    #: continuously (the rest is host-side work such as data loading).
    gpu_duty: float
    #: SM demand of the task's kernels (0..1], used for occupancy traces.
    sm_demand: float
    #: Server-II (RTX 3080) speed as a fraction of Server-I speed.
    speed_server_ii: float
    #: Server-CPU speed as a fraction of Server-I speed.
    speed_cpu: float
    #: Fractional slowdown imposed on an overlapping training op when
    #: co-located under MPS (fitted to Table 2's MPS column).
    mps_interference: float
    #: Fractional slowdown under naive co-location, which time-slices
    #: contexts instead of running kernels concurrently (Table 2, Naive).
    naive_interference: float


#: ResNet18, batch 64: "takes only 2.63 GB of GPU memory with each iteration
#: taking only 30.4 ms on our platform" (section 2.3).
RESNET18 = SideTaskProfile(
    name="resnet18",
    step_time_s=0.0304,
    memory_gb=2.63,
    units_per_step=64.0,
    gpu_duty=0.75,
    sm_demand=0.60,
    speed_server_ii=0.89,
    speed_cpu=0.0236,
    mps_interference=0.2,
    naive_interference=0.63,
)

RESNET50 = SideTaskProfile(
    name="resnet50",
    step_time_s=0.095,
    memory_gb=6.2,
    units_per_step=64.0,
    gpu_duty=0.75,
    sm_demand=0.75,
    speed_server_ii=0.718,
    speed_cpu=0.0166,
    mps_interference=0.29,
    naive_interference=0.98,
)

#: VGG19's memory footprint exceeds the bubbles of stages 0 and 1 at 3.6B
#: ("the GPU memory consumption of VGG19 or the Image side task is larger
#: than the GPU memory of bubbles in stages 0 and 1", section 6.5).
VGG19 = SideTaskProfile(
    name="vgg19",
    step_time_s=0.210,
    memory_gb=11.5,
    units_per_step=64.0,
    gpu_duty=0.75,
    sm_demand=0.85,
    speed_server_ii=0.479,
    speed_cpu=0.0089,
    mps_interference=0.38,
    naive_interference=1.0,
)

#: PageRank on an Orkut-scale graph; short per-iteration steps give it the
#: highest FreeRide-runtime share in Figure 9.
PAGERANK = SideTaskProfile(
    name="pagerank",
    step_time_s=0.003,
    memory_gb=2.8,
    units_per_step=1.0,
    gpu_duty=0.85,
    sm_demand=0.70,
    speed_server_ii=0.484,
    speed_cpu=0.0425,
    mps_interference=0.19,
    naive_interference=0.51,
)

#: Graph SGD (matrix factorization); the paper singles it out for "high
#: compute intensity" — 231% time increase under MPS (section 6.2).
GRAPH_SGD = SideTaskProfile(
    name="graph_sgd",
    step_time_s=0.238,
    memory_gb=9.5,
    units_per_step=1.0,
    gpu_duty=0.95,
    sm_demand=0.95,
    speed_server_ii=0.275,
    speed_cpu=0.1099,
    mps_interference=3.05,
    naive_interference=0.79,
)

#: Image resize + watermark (nvJPEG sample); like VGG19 it does not fit the
#: bubbles of stages 0 and 1 (section 6.5).
IMAGE = SideTaskProfile(
    name="image",
    step_time_s=0.082,
    memory_gb=11.0,
    units_per_step=1.0,
    gpu_duty=0.60,
    sm_demand=0.50,
    speed_server_ii=0.443,
    speed_cpu=0.0909,
    mps_interference=0.19,
    naive_interference=1.06,
)

SIDE_TASK_PROFILES = {
    profile.name: profile
    for profile in (RESNET18, RESNET50, VGG19, PAGERANK, GRAPH_SGD, IMAGE)
}

#: The paper's mixed workload: "PageRank, ResNet18, Image, and VGG19, each
#: in one worker corresponding to the GPU of stages 0-3" (section 6.2).
MIXED_WORKLOAD_BY_STAGE = ("pagerank", "resnet18", "image", "vgg19")


def scale_model_training_profile(
    profile: SideTaskProfile, batch_size: int
) -> SideTaskProfile:
    """Re-profile a model-training task for a different batch size.

    Step time and activation memory scale roughly linearly with batch size
    around the paper's batch-64 operating point; the fixed part of the
    memory is the model itself. Used by the Figure 7(a,b) sensitivity sweep
    (batch sizes 16-128).
    """
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    scale = batch_size / 64.0
    fixed_memory = 0.35 * profile.memory_gb
    return dataclasses.replace(
        profile,
        step_time_s=profile.step_time_s * (0.25 + 0.75 * scale),
        memory_gb=fixed_memory + (profile.memory_gb - fixed_memory) * scale,
        units_per_step=float(batch_size),
    )
