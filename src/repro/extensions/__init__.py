"""Extensions beyond the paper's evaluation, from its section-8 discussion.

* :mod:`repro.extensions.multi_server` — "As FreeRide implements
  communication among its components using RPCs, it can be easily extended
  to distributed settings with side tasks on multiple servers. During
  training, the side task manager of FreeRide receives bubbles from all
  GPUs from both remote servers and manages the side tasks that co-locate
  with each GPU." One manager, several instrumented training jobs.
* :mod:`repro.metrics.traces` — trace export for offline plotting.
"""

from repro.extensions.multi_server import MultiServerFreeRide

__all__ = ["MultiServerFreeRide"]
