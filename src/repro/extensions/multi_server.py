"""Back-compat shim: multi-server FreeRide moved to :mod:`repro.cluster`.

The hand-rolled section-8 deployment grew into a first-class subsystem —
job specs, a :class:`~repro.cluster.builder.ClusterBuilder`, a typed
:class:`~repro.cluster.result.ClusterResult`, and a ``kind="cluster"``
scenario reachable from the CLI (``repro run cluster``). This module
survives only as a re-export so existing imports keep working.

* ``MultiServerFreeRide(configs, ...)`` → :class:`repro.cluster.Cluster`
* ``MultiServerResult`` → :class:`repro.cluster.ClusterResult` — the
  old *read* surface (``trainings``/``tasks``/``rejections``/
  ``total_units``) is preserved via properties; constructing one by
  hand now takes ``ClusterResult``'s own fields (``jobs=...``), not
  the old ``trainings=...`` keyword
"""

from __future__ import annotations

from repro.cluster.builder import Cluster as MultiServerFreeRide
from repro.cluster.builder import _OffsetListener
from repro.cluster.result import ClusterResult as MultiServerResult

__all__ = ["MultiServerFreeRide", "MultiServerResult", "_OffsetListener"]
