"""Multi-server FreeRide: one manager, several pipeline-training jobs.

The core manager is already server-count agnostic — it coordinates a flat
list of workers and receives bubbles tagged with a worker index. This
module builds the distributed deployment of paper section 8: each training
job runs on its own (simulated) server with its own instrumentation, all
reports flow over RPC to a single shared side-task manager, and Algorithm 1
places tasks across the *combined* worker pool.
"""

from __future__ import annotations

import dataclasses
import typing

from repro import calibration
from repro.core.manager import SideTaskManager
from repro.core.middleware import TaskReport, WorkloadFactory, _ManagerListener
from repro.core.policies import AssignmentPolicy, least_loaded_policy
from repro.core.profiler import profile_side_task
from repro.core.task_spec import TaskProfile, TaskSpec
from repro.core.worker import SideTaskWorker
from repro.errors import TaskRejectedError
from repro.gpu.cluster import make_server_i
from repro.pipeline.config import TrainConfig
from repro.pipeline.engine import PipelineEngine, TrainingResult, profile_bubbles
from repro.pipeline.instrumentation import BubbleStart
from repro.pipeline.memory_model import MemoryModel
from repro.sim.engine import Engine
from repro.sim.events import AllOf
from repro.sim.rng import RandomStreams


class _OffsetListener(_ManagerListener):
    """Maps a job's local stage numbers into the global worker index."""

    def __init__(self, *args, stage_offset: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.stage_offset = stage_offset

    def on_bubble_start(self, report: BubbleStart) -> None:
        shifted = dataclasses.replace(
            report, stage=report.stage + self.stage_offset
        )
        super().on_bubble_start(shifted)

    def on_bubble_end(self, stage: int, now: float) -> None:
        super().on_bubble_end(stage + self.stage_offset, now)


@dataclasses.dataclass
class MultiServerResult:
    trainings: list[TrainingResult]
    tasks: list[TaskReport]
    rejections: list[tuple[str, str]]

    @property
    def total_units(self) -> float:
        return sum(report.units_done for report in self.tasks)


class MultiServerFreeRide:
    """FreeRide across several independently trained pipeline jobs."""

    def __init__(
        self,
        train_configs: typing.Sequence[TrainConfig],
        seed: int = 0,
        policy: AssignmentPolicy = least_loaded_policy,
        hook_cost_s: float = calibration.INSTRUMENTATION_OVERHEAD_S,
        rpc_latency_s: float = calibration.RPC_LATENCY_S,
    ):
        if not train_configs:
            raise ValueError("need at least one training job")
        self.sim = Engine()
        self.rng = RandomStreams(seed)
        self.workers: list[SideTaskWorker] = []
        self.pipelines: list[PipelineEngine] = []
        servers = []
        # Build workers for every server first (the manager needs them all).
        worker_specs = []
        for job, config in enumerate(train_configs):
            server = make_server_i(self.sim)
            servers.append(server)
            memory = MemoryModel(config.model, config.num_stages,
                                 config.micro_batches,
                                 gpu_memory_gb=server.gpu(0).memory_gb)
            for stage in range(config.num_stages):
                index = len(worker_specs)
                worker_specs.append((job, server, stage, memory))
                self.workers.append(
                    SideTaskWorker(
                        self.sim,
                        server.gpu(stage),
                        stage=index,  # global index: the manager's key
                        side_task_memory_gb=memory.available_gb(stage),
                        mps=server.mps,
                        rng=self.rng.spawn(f"worker{index}"),
                        name=f"job{job}-worker{stage}",
                    )
                )
        self.manager = SideTaskManager(
            self.sim, self.workers, policy=policy,
            rpc_latency_s=rpc_latency_s,
        )
        offset = 0
        for job, config in enumerate(train_configs):
            server = servers[job]
            profile = profile_bubbles(make_server_i, config)
            memory = MemoryModel(config.model, config.num_stages,
                                 config.micro_batches,
                                 gpu_memory_gb=server.gpu(0).memory_gb)
            listener = _OffsetListener(
                self.sim, self.manager, memory, hook_cost_s, rpc_latency_s,
                stage_offset=offset,
            )
            self.pipelines.append(
                PipelineEngine(
                    self.sim, server, config,
                    rng=self.rng.spawn(f"pipeline{job}"),
                    listener=listener, profile=profile,
                )
            )
            offset += config.num_stages
        self._submissions: list[tuple[TaskSpec, str, int]] = []

    def submit(self, workload_factory: WorkloadFactory,
               interface: str = "iterative",
               profile: TaskProfile | None = None,
               name: str = "") -> TaskSpec | None:
        if profile is None:
            profile = profile_side_task(workload_factory(),
                                        interface=interface)
        workload = workload_factory()
        if not name:
            name = f"{workload.name}-{len(self._submissions)}"
        spec = TaskSpec(workload=workload, profile=profile, name=name,
                        submitted_at=self.sim.now)
        try:
            worker = self.manager.submit(spec, interface)
        except TaskRejectedError:
            return None
        self._submissions.append((spec, interface, worker.stage))
        return spec

    def run(self, settle_s: float = 2.0) -> MultiServerResult:
        procs = [pipeline.start() for pipeline in self.pipelines]
        self.sim.run(until=AllOf(self.sim, procs))
        trainings = [proc.value for proc in procs]
        for task in self.manager.live_tasks():
            self.manager.stop_task(task)
        self.sim.run(until=self.sim.now + settle_s)
        self.sim.run()
        reports = []
        for spec, interface, index in self._submissions:
            runtime = next(
                runtime
                for worker in self.workers
                for runtime in worker.all_tasks
                if runtime.spec is spec
            )
            reports.append(TaskReport(
                name=spec.name,
                interface=interface,
                stage=index,
                final_state=runtime.state,
                failure=runtime.failure,
                steps_done=spec.workload.steps_done,
                units_done=spec.workload.units_done,
                running_s=runtime.running_s,
                overhead_s=runtime.overhead_s,
                insufficient_s=runtime.insufficient_s,
                init_s=runtime.init_s,
                gpu_memory_gb=spec.profile.gpu_memory_gb,
            ))
        return MultiServerResult(
            trainings=trainings,
            tasks=reports,
            rejections=list(self.manager.rejections),
        )
