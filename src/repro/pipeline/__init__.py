"""Pipeline-parallel training substrate (DeepSpeed-like).

Implements the paper's training setup (section 6.1.3): a nanoGPT-style
model of 1.2B / 3.6B / 6B parameters, split into a 4-stage pipeline, one
stage per GPU, trained with the 1F1B (PipeDream-flush) schedule that
DeepSpeed uses. Bubbles are *not* injected — they emerge from the FP/BP
dependency structure exactly as in the real system, and
:mod:`repro.pipeline.analysis` classifies them into the paper's Type-A /
Type-B / Type-C taxonomy.

:mod:`repro.pipeline.instrumentation` is the simulated counterpart of the
paper's 55-line DeepSpeed patch: three hook sites that report bubbles to
the FreeRide side-task manager.
"""

from repro.pipeline.analysis import (
    BubbleRecord,
    BubbleType,
    TrainingTrace,
    bubble_rate,
    bubble_shape_stats,
)
from repro.pipeline.config import MODEL_PRESETS, ModelConfig, TrainConfig, model_config
from repro.pipeline.engine import PipelineEngine, TrainingResult
from repro.pipeline.instrumentation import (
    BubbleListener,
    BubbleProfile,
    NullListener,
    RecordingListener,
)
from repro.pipeline.memory_model import MemoryModel
from repro.pipeline.ops import Op, OpKind, OpRecord
from repro.pipeline.schedule import ScheduleKind, stage_order
from repro.pipeline.timing import TimingModel

__all__ = [
    "BubbleListener",
    "BubbleProfile",
    "BubbleRecord",
    "BubbleType",
    "MemoryModel",
    "MODEL_PRESETS",
    "ModelConfig",
    "NullListener",
    "Op",
    "OpKind",
    "OpRecord",
    "PipelineEngine",
    "RecordingListener",
    "ScheduleKind",
    "TimingModel",
    "TrainConfig",
    "TrainingResult",
    "TrainingTrace",
    "bubble_rate",
    "bubble_shape_stats",
    "model_config",
    "stage_order",
]
