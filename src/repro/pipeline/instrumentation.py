"""The simulated counterpart of the paper's DeepSpeed instrumentation.

The paper modifies DeepSpeed "in three places with 55 lines of code" to
report bubbles — start timestamp and duration — to the side-task manager
(sections 3.2 and 4.6). Here the pipeline engine invokes a
:class:`BubbleListener` at the same structural sites; FreeRide's
middleware installs a listener that forwards the reports over RPC.

Durations come from a :class:`BubbleProfile` built by an offline profiling
run ("this offline profiling is done only once for each model and pipeline
scheduling", section 4.3): bubbles recur at the same positions every epoch
because the schedule is static, so the profile is keyed by
``(stage, index-within-epoch)``.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.pipeline.analysis import BubbleType, TrainingTrace


@dataclasses.dataclass(frozen=True)
class BubbleStart:
    """What the instrumented training system reports when a bubble begins."""

    stage: int
    index: int
    start: float
    btype: BubbleType
    available_gb: float
    #: expected duration from the offline profile; None while profiling
    expected_duration: float | None

    @property
    def expected_end(self) -> float | None:
        if self.expected_duration is None:
            return None
        return self.start + self.expected_duration


class BubbleListener:
    """Interface the pipeline engine reports to.

    ``hook_cost_s`` is charged to the training process when a bubble ends,
    right before the dependent op resumes — the cost of the instrumentation
    hook plus its report RPC sitting on the training critical path. This is
    the mechanistic source of FreeRide's ~1% baseline overhead; the
    unmodified baselines use :class:`NullListener` and pay nothing.
    """

    hook_cost_s: float = 0.0

    def on_epoch_start(self, epoch: int, now: float) -> None:  # pragma: no cover
        pass

    def on_bubble_start(self, report: BubbleStart) -> None:  # pragma: no cover
        pass

    def on_bubble_end(self, stage: int, now: float) -> None:  # pragma: no cover
        pass

    def on_epoch_end(self, epoch: int, now: float) -> None:  # pragma: no cover
        pass


class NullListener(BubbleListener):
    """Unmodified DeepSpeed: no reports, no hook cost."""


class RecordingListener(BubbleListener):
    """Keeps every report; used by tests and the bubble profiler."""

    def __init__(self, hook_cost_s: float = 0.0):
        self.hook_cost_s = hook_cost_s
        self.starts: list[BubbleStart] = []
        self.ends: list[tuple[int, float]] = []
        self.epoch_starts: list[tuple[int, float]] = []
        self.epoch_ends: list[tuple[int, float]] = []

    def on_epoch_start(self, epoch: int, now: float) -> None:
        self.epoch_starts.append((epoch, now))

    def on_bubble_start(self, report: BubbleStart) -> None:
        self.starts.append(report)

    def on_bubble_end(self, stage: int, now: float) -> None:
        self.ends.append((stage, now))

    def on_epoch_end(self, epoch: int, now: float) -> None:
        self.epoch_ends.append((epoch, now))


@dataclasses.dataclass
class BubbleProfile:
    """Expected bubble durations keyed by ``(stage, index-within-epoch)``."""

    durations: dict[tuple[int, int], float]
    available_gb: dict[int, float]

    @classmethod
    def from_trace(cls, trace: TrainingTrace) -> "BubbleProfile":
        """Median duration per (stage, index) over the profiled epochs."""
        samples: dict[tuple[int, int], list[float]] = {}
        available: dict[int, float] = {}
        for bubble in trace.bubbles:
            samples.setdefault((bubble.stage, bubble.index), []).append(
                bubble.duration
            )
            available[bubble.stage] = bubble.available_gb
        durations = {
            key: statistics.median(values) for key, values in samples.items()
        }
        return cls(durations=durations, available_gb=available)

    def expected_duration(self, stage: int, index: int) -> float | None:
        return self.durations.get((stage, index))

    def bubbles_per_epoch(self, stage: int) -> int:
        return sum(1 for key in self.durations if key[0] == stage)

    def total_bubble_time(self, stage: int) -> float:
        return sum(
            duration for (s, _i), duration in self.durations.items() if s == stage
        )


def emit_trace_spans(tracer, trace: TrainingTrace, job: str = "train") -> None:
    """Replay a finished :class:`TrainingTrace` as observability spans.

    The pipeline engine records its own op/bubble/epoch intervals, so
    rather than instrumenting its inner loop this converts the trace
    after the run — same data, zero cost on the simulated critical path.
    One track per stage, grouped under ``job`` (multi-job clusters pass
    each job's name so Perfetto shows one process per job).
    """
    if not tracer.enabled:
        return
    for record in trace.ops:
        tracer.complete(
            record.op.kind.value, record.start, record.end,
            cat="pipeline.op",
            track=(f"{job}:pipeline", f"stage{record.op.stage}"),
            args={"epoch": record.epoch,
                  "micro_batch": record.op.micro_batch},
        )
    for bubble in trace.bubbles:
        tracer.complete(
            f"bubble:{bubble.btype.value}", bubble.start, bubble.end,
            cat="pipeline.bubble",
            track=(f"{job}:bubbles", f"stage{bubble.stage}"),
            args={"epoch": bubble.epoch, "index": bubble.index,
                  "available_gb": bubble.available_gb},
        )
    for epoch in trace.epochs:
        tracer.complete(
            f"epoch{epoch.index}", epoch.start, epoch.end,
            cat="pipeline.epoch", track=(f"{job}:pipeline", "epochs"),
            args={"epoch": epoch.index},
        )
