"""Bubble records, classification, and statistics.

Implements the paper's bubble taxonomy (section 2.2.1):

* **Type-A** — at the start and end of each epoch, from the cascading
  dependencies while the pipeline fills and drains;
* **Type-B** — in the middle of an epoch, the wait for the first backward
  pass to travel back from the last stage;
* **Type-C** — the shorter middle-of-epoch waits caused by interleaved but
  unaligned FP and BP ops (BP takes about twice as long as FP).

Classification happens structurally, from each gap's position in the
stage's op order — before the first op / after the last op (A), directly
before the stage's first backward (B), anywhere else (C).
"""

from __future__ import annotations

import dataclasses
import enum
import statistics
import typing

from repro.pipeline.ops import OpRecord


class BubbleType(enum.Enum):
    TYPE_A = "A"
    TYPE_B = "B"
    TYPE_C = "C"


@dataclasses.dataclass(frozen=True)
class BubbleRecord:
    """One observed GPU-idle window on one stage."""

    epoch: int
    stage: int
    #: position of this bubble within the stage's epoch (0-based)
    index: int
    start: float
    end: float
    btype: BubbleType
    #: GPU memory a side task could use during this bubble (GB)
    available_gb: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass
class EpochRecord:
    index: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass
class TrainingTrace:
    """Everything one pipeline-training run observed."""

    num_stages: int
    ops: list[OpRecord] = dataclasses.field(default_factory=list)
    bubbles: list[BubbleRecord] = dataclasses.field(default_factory=list)
    epochs: list[EpochRecord] = dataclasses.field(default_factory=list)

    # -- accessors -------------------------------------------------------
    def ops_of(self, stage: int, epoch: int | None = None) -> list[OpRecord]:
        return [
            record for record in self.ops
            if record.op.stage == stage and (epoch is None or record.epoch == epoch)
        ]

    def bubbles_of(
        self,
        stage: int | None = None,
        epoch: int | None = None,
        btype: BubbleType | None = None,
    ) -> list[BubbleRecord]:
        return [
            bubble for bubble in self.bubbles
            if (stage is None or bubble.stage == stage)
            and (epoch is None or bubble.epoch == epoch)
            and (btype is None or bubble.btype == btype)
        ]

    @property
    def total_time(self) -> float:
        if not self.epochs:
            return 0.0
        return self.epochs[-1].end - self.epochs[0].start

    def mean_epoch_time(self) -> float:
        if not self.epochs:
            return 0.0
        return statistics.fmean(epoch.duration for epoch in self.epochs)

    def mean_stage_bubble_time(self) -> float:
        """Mean total bubble time per stage per epoch (Figure 2b series)."""
        if not self.epochs:
            return 0.0
        per_stage = [
            sum(bubble.duration for bubble in self.bubbles_of(stage=stage))
            for stage in range(self.num_stages)
        ]
        return statistics.fmean(per_stage) / len(self.epochs)


def bubble_rate(trace: TrainingTrace) -> float:
    """Total bubble time over pipeline-training time (paper section 2.2.2).

    Averaged across stages: each stage's idle fraction of the run, then the
    mean over stages — 42.4% for the paper's default 3.6B / 4-micro-batch
    setup.
    """
    total = trace.total_time
    if total <= 0:
        return 0.0
    fractions = []
    for stage in range(trace.num_stages):
        idle = sum(bubble.duration for bubble in trace.bubbles_of(stage=stage))
        fractions.append(idle / total)
    return statistics.fmean(fractions)


def bubble_shape_stats(trace: TrainingTrace) -> dict:
    """Duration/memory statistics per type and stage (Figure 2a)."""
    durations = [bubble.duration for bubble in trace.bubbles]
    if not durations:
        return {"count": 0}
    by_type: dict[str, dict] = {}
    for btype in BubbleType:
        of_type = trace.bubbles_of(btype=btype)
        if not of_type:
            continue
        typed = [bubble.duration for bubble in of_type]
        by_type[btype.value] = {
            "count": len(of_type),
            "min_s": min(typed),
            "max_s": max(typed),
            "mean_s": statistics.fmean(typed),
        }
    per_stage: list[dict] = []
    for stage in range(trace.num_stages):
        of_stage = trace.bubbles_of(stage=stage)
        if not of_stage:
            continue
        per_stage.append(
            {
                "stage": stage,
                "count": len(of_stage),
                "mean_duration_s": statistics.fmean(b.duration for b in of_stage),
                "available_gb": of_stage[0].available_gb,
            }
        )
    return {
        "count": len(durations),
        "min_s": min(durations),
        "max_s": max(durations),
        "mean_s": statistics.fmean(durations),
        "by_type": by_type,
        "per_stage": per_stage,
        "points": [
            (bubble.duration, bubble.available_gb) for bubble in trace.bubbles
        ],
    }


def classify_gap(
    *,
    is_before_first_op: bool,
    is_after_last_op: bool,
    next_is_first_backward: bool,
) -> BubbleType:
    """Structural bubble classification (see module docstring)."""
    if is_before_first_op or is_after_last_op:
        return BubbleType.TYPE_A
    if next_is_first_backward:
        return BubbleType.TYPE_B
    return BubbleType.TYPE_C


if typing.TYPE_CHECKING:  # pragma: no cover - re-export for typing only
    __all_records__ = (OpRecord,)
