"""Model and training configuration.

The paper trains nanoGPT variants of 1.2B, 3.6B and 6B parameters with
DeepSpeed in a 4-stage pipeline, always maximizing the micro-batch size
until just before OOM (section 6.1.3). Epoch here means one pipeline
iteration over a global batch, as in the paper's Figures 1 and 2.
"""

from __future__ import annotations

import dataclasses

from repro import calibration
from repro.errors import PipelineError


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """A nanoGPT-style model, identified by its parameter count."""

    name: str
    params_billion: float

    def __post_init__(self):
        if self.params_billion <= 0:
            raise PipelineError(
                f"model size must be positive, got {self.params_billion}"
            )


MODEL_PRESETS = {
    "1.2B": ModelConfig(name="nanogpt-1.2B", params_billion=1.2),
    "3.6B": ModelConfig(name="nanogpt-3.6B", params_billion=3.6),
    "6B": ModelConfig(name="nanogpt-6B", params_billion=6.0),
}


def model_config(size: str | float) -> ModelConfig:
    """Look up a preset by label ("3.6B") or build one from a size in B."""
    if isinstance(size, str):
        if size not in MODEL_PRESETS:
            raise PipelineError(
                f"unknown model preset {size!r}; choose from {sorted(MODEL_PRESETS)}"
            )
        return MODEL_PRESETS[size]
    return ModelConfig(name=f"nanogpt-{size:g}B", params_billion=float(size))


@dataclasses.dataclass(frozen=True)
class TrainConfig:
    """One pipeline-training run."""

    model: ModelConfig
    num_stages: int = calibration.NUM_STAGES
    micro_batches: int = calibration.DEFAULT_MICRO_BATCHES
    epochs: int = 8
    seed: int = 0
    #: relative lognormal jitter on op durations
    op_jitter: float = calibration.OP_TIME_REL_JITTER
    #: "1f1b" (DeepSpeed default) or "gpipe" (ablation)
    schedule: str = "1f1b"

    def __post_init__(self):
        if self.num_stages < 2:
            raise PipelineError(
                f"pipeline needs at least 2 stages, got {self.num_stages}"
            )
        if self.micro_batches < 1:
            raise PipelineError(
                f"need at least 1 micro-batch, got {self.micro_batches}"
            )
        if self.epochs < 1:
            raise PipelineError(f"need at least 1 epoch, got {self.epochs}")
        if self.schedule not in ("1f1b", "gpipe"):
            raise PipelineError(f"unknown schedule {self.schedule!r}")
