"""The pipeline-training engine.

Executes the static per-stage op order on the simulated GPUs, honouring
the cross-stage dependency rules of :mod:`repro.pipeline.ops`. Bubbles are
the waits this execution produces; nothing about them is scripted.

Each stage is one training :class:`~repro.gpu.process.GPUProcess` pinned
to its GPU with its stage memory allocated up front (memory use is flat
within a stage, paper Figure 1b). Ops run as high-priority kernels, so any
co-located side task stretches them according to the device's sharing
mode — which is precisely how the co-location overheads of Table 2 arise.
"""

from __future__ import annotations

import dataclasses
import functools
import typing

from repro.gpu.kernel import TRAINING_INTERFERENCE, Priority
from repro.gpu.process import GPUProcess
from repro.pipeline.analysis import (
    BubbleRecord,
    EpochRecord,
    TrainingTrace,
    classify_gap,
)
from repro.pipeline.config import TrainConfig
from repro.pipeline.instrumentation import (
    BubbleListener,
    BubbleProfile,
    BubbleStart,
    NullListener,
)
from repro.pipeline.memory_model import MemoryModel
from repro.pipeline.ops import Op, OpKind, OpRecord, dependencies
from repro.pipeline.schedule import stage_order
from repro.pipeline.timing import TimingModel
from repro.sim.engine import Engine
from repro.sim.events import AllOf, SimEvent
from repro.sim.process import Process
from repro.sim.rng import RandomStreams

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.cluster import Server

#: gaps shorter than this are jitter noise, not bubbles: no side task could
#: use them, and the paper's smallest observed bubble is 0.22 s
MIN_BUBBLE_S = 0.05
#: profiled bubbles shorter than this are not worth reporting to the manager
MIN_REPORT_S = 0.05
#: SM demand of training kernels (Figure 1a shows near-full occupancy)
OP_SM_DEMAND = 0.95
OPTIMIZER_SM_DEMAND = 0.55


@dataclasses.dataclass
class TrainingResult:
    """Outcome of one pipeline-training run."""

    config: TrainConfig
    trace: TrainingTrace
    start_time: float
    end_time: float

    @property
    def total_time(self) -> float:
        return self.end_time - self.start_time

    @property
    def mean_epoch_time(self) -> float:
        return self.trace.mean_epoch_time()


class PipelineEngine:
    """DeepSpeed-like pipeline training over simulated GPUs."""

    def __init__(
        self,
        sim: Engine,
        server: "Server",
        config: TrainConfig,
        rng: RandomStreams | None = None,
        listener: BubbleListener | None = None,
        profile: BubbleProfile | None = None,
    ):
        if server.num_gpus < config.num_stages:
            raise ValueError(
                f"{server.name} has {server.num_gpus} GPUs; "
                f"{config.num_stages} stages need one each"
            )
        self.sim = sim
        self.server = server
        self.config = config
        self.rng = rng or RandomStreams(config.seed)
        self.listener = listener or NullListener()
        self.profile = profile
        self.timing = TimingModel(config.model, config.op_jitter, self.rng)
        self.memory = MemoryModel(
            config.model,
            config.num_stages,
            config.micro_batches,
            gpu_memory_gb=server.gpu(0).memory_gb,
        )
        self.trace = TrainingTrace(num_stages=config.num_stages)
        self.stage_procs: list[GPUProcess] = [
            GPUProcess(
                sim,
                server.gpu(stage),
                name=f"train-stage{stage}",
                priority=Priority.TRAINING,
                interference=TRAINING_INTERFERENCE,
            )
            for stage in range(config.num_stages)
        ]
        self._orders = [
            stage_order(config.schedule, stage, config.num_stages,
                        config.micro_batches)
            for stage in range(config.num_stages)
        ]
        self._start_time: float | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def start(self) -> Process:
        """Spawn the training coroutine; returns its process."""
        return self.sim.process(self._run(), name="pipeline-training")

    def run(self) -> TrainingResult:
        """Start training and run the simulation until it finishes."""
        proc = self.start()
        return self.sim.run(until=proc)

    # ------------------------------------------------------------------
    # coroutines
    # ------------------------------------------------------------------
    def _run(self):
        self._start_time = self.sim.now
        for stage, proc in enumerate(self.stage_procs):
            proc.allocate(self.memory.stage_memory_gb(stage))
        for epoch in range(self.config.epochs):
            epoch_start = self.sim.now
            self.listener.on_epoch_start(epoch, epoch_start)
            op_done: dict[Op, SimEvent] = {}
            for stage in range(self.config.num_stages):
                for op in self._orders[stage]:
                    op_done[op] = self.sim.event(name=str(op))
            trailing: dict[int, tuple[float, int]] = {}
            stage_runs = [
                self.sim.process(
                    self._stage_epoch(stage, epoch, op_done, trailing),
                    name=f"stage{stage}-epoch{epoch}",
                )
                for stage in range(self.config.num_stages)
            ]
            yield AllOf(self.sim, stage_runs)
            epoch_end = self.sim.now
            self._close_trailing_bubbles(epoch, epoch_end, trailing)
            self.trace.epochs.append(EpochRecord(epoch, epoch_start, epoch_end))
            self.listener.on_epoch_end(epoch, epoch_end)
        result = TrainingResult(
            config=self.config,
            trace=self.trace,
            start_time=self._start_time,
            end_time=self.sim.now,
        )
        return result

    def _stage_epoch(self, stage, epoch, op_done, trailing):
        proc = self.stage_procs[stage]
        order = self._orders[stage]
        first_backward = next(
            (op for op in order if op.kind is OpKind.BACKWARD), None
        )
        # Bubbles are identified by the op position they precede (the
        # trailing bubble uses len(order)). The instrumentation hooks sit
        # at fixed code sites in the schedule, so this key — unlike a
        # running per-epoch counter — stays aligned with the offline
        # profile even when co-location perturbs the timing and creates
        # or removes incidental waits.
        for position, op in enumerate(order):
            deps = [op_done[dep] for dep in dependencies(op, self.config.num_stages)]
            pending = [event for event in deps if not event.processed]
            # An event that has triggered but not yet processed completes at
            # this same instant: waiting on it costs zero time and is not a
            # bubble. Only genuinely untriggered dependencies open one.
            will_wait = any(not event.triggered for event in deps)
            if not will_wait and pending:
                yield AllOf(self.sim, pending)
                pending = []
            if pending:
                wait_start = self.sim.now
                btype = classify_gap(
                    is_before_first_op=(position == 0),
                    is_after_last_op=False,
                    next_is_first_backward=(op == first_backward),
                )
                reported = self._report_bubble_start(
                    stage, position, wait_start, btype
                )
                yield AllOf(self.sim, pending)
                wait_end = self.sim.now
                if reported:
                    self.listener.on_bubble_end(stage, wait_end)
                    if self.listener.hook_cost_s > 0:
                        yield self.sim.timeout(self.listener.hook_cost_s)
                if wait_end - wait_start >= MIN_BUBBLE_S:
                    self.trace.bubbles.append(
                        BubbleRecord(
                            epoch=epoch,
                            stage=stage,
                            index=position,
                            start=wait_start,
                            end=wait_end,
                            btype=btype,
                            available_gb=self.memory.available_gb(stage),
                        )
                    )
            duration = self.timing.op_duration(op)
            start = self.sim.now
            done = proc.launch_kernel(
                work_s=duration, sm_demand=OP_SM_DEMAND, name=str(op)
            )
            yield done
            self.trace.ops.append(
                OpRecord(epoch=epoch, op=op, start=start, end=self.sim.now)
            )
            op_done[op].succeed()
        # Per-stage optimizer step (busy, bubble-free).
        opt_time = self.rng.jitter(
            f"opt:{stage}", self.timing.optimizer_time, self.config.op_jitter
        ) if self.config.op_jitter > 0 else self.timing.optimizer_time
        yield proc.launch_kernel(
            work_s=opt_time, sm_demand=OPTIMIZER_SM_DEMAND, name=f"opt-s{stage}"
        )
        # The stage now idles until the slowest stage finishes the epoch:
        # the trailing Type-A bubble. Report its start; the coordinator
        # closes it when the epoch barrier falls.
        trailing_index = len(order)
        self._report_bubble_start(
            stage, trailing_index, self.sim.now, classify_gap(
                is_before_first_op=False,
                is_after_last_op=True,
                next_is_first_backward=False,
            ),
        )
        trailing[stage] = (self.sim.now, trailing_index)

    def _report_bubble_start(self, stage, index, start, btype) -> bool:
        """Report to the listener unless the profile says it is negligible.

        Returns True when a report was made (so the matching end report and
        hook cost apply).
        """
        expected = None
        if self.profile is not None:
            expected = self.profile.expected_duration(stage, index)
            if expected is None or expected < MIN_REPORT_S:
                return False
        self.listener.on_bubble_start(
            BubbleStart(
                stage=stage,
                index=index,
                start=start,
                btype=btype,
                available_gb=self.memory.available_gb(stage),
                expected_duration=expected,
            )
        )
        return True

    def _close_trailing_bubbles(self, epoch, epoch_end, trailing):
        for stage, (start, index) in trailing.items():
            reported = True
            if self.profile is not None:
                expected = self.profile.expected_duration(stage, index)
                reported = expected is not None and expected >= MIN_REPORT_S
            if reported:
                self.listener.on_bubble_end(stage, epoch_end)
            if epoch_end - start >= MIN_BUBBLE_S:
                self.trace.bubbles.append(
                    BubbleRecord(
                        epoch=epoch,
                        stage=stage,
                        index=index,
                        start=start,
                        end=epoch_end,
                        btype=classify_gap(
                            is_before_first_op=False,
                            is_after_last_op=True,
                            next_is_first_backward=False,
                        ),
                        available_gb=self.memory.available_gb(stage),
                    )
                )


def profile_bubbles(
    server_factory: typing.Callable[[Engine], "Server"],
    config: TrainConfig,
    profiling_epochs: int = 3,
) -> BubbleProfile:
    """Offline bubble profiling (paper section 4.3).

    Runs a short training job on a fresh simulation and extracts the
    per-(stage, index) bubble durations. "This offline profiling is done
    only once for each model and pipeline scheduling" — so the result is
    cached on the probe configuration (the training config with its epoch
    count replaced), and every FreeRide instance sharing a model, schedule
    and seed reuses it. The profile is treated as read-only by consumers.
    """
    probe_config = dataclasses.replace(config, epochs=profiling_epochs)
    return _profile_bubbles_cached(server_factory, probe_config)


@functools.lru_cache(maxsize=64)
def _profile_bubbles_cached(
    server_factory: typing.Callable[[Engine], "Server"],
    probe_config: TrainConfig,
) -> BubbleProfile:
    sim = Engine()
    server = server_factory(sim)
    engine = PipelineEngine(sim, server, probe_config)
    result = engine.run()
    return BubbleProfile.from_trace(result.trace)
