"""Pipeline operations and their dependency rules.

The dependency structure is what creates bubbles (paper section 2.1):

* ``FP(s, m)`` needs ``FP(s-1, m)`` — activations arriving from upstream;
* ``BP(s, m)`` needs ``BP(s+1, m)`` — gradients arriving from downstream —
  and, on the last stage, ``FP(S-1, m)``;
* every ``BP(s, m)`` also needs its own ``FP(s, m)`` (stored activations).
"""

from __future__ import annotations

import dataclasses
import enum


class OpKind(enum.Enum):
    FORWARD = "FP"
    BACKWARD = "BP"


@dataclasses.dataclass(frozen=True, order=True)
class Op:
    """One forward or backward pass of one micro-batch at one stage."""

    stage: int
    micro_batch: int
    kind: OpKind = dataclasses.field(compare=True)

    def __str__(self) -> str:
        return f"{self.kind.value}(s{self.stage},m{self.micro_batch})"


def dependencies(op: Op, num_stages: int) -> list[Op]:
    """Cross-stage (and FP-before-BP) dependencies of ``op``."""
    deps: list[Op] = []
    if op.kind is OpKind.FORWARD:
        if op.stage > 0:
            deps.append(Op(op.stage - 1, op.micro_batch, OpKind.FORWARD))
    else:
        deps.append(Op(op.stage, op.micro_batch, OpKind.FORWARD))
        if op.stage < num_stages - 1:
            deps.append(Op(op.stage + 1, op.micro_batch, OpKind.BACKWARD))
    return deps


@dataclasses.dataclass(frozen=True)
class OpRecord:
    """Execution interval of one op, for traces and Figure 1."""

    epoch: int
    op: Op
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start
