"""Per-stage GPU memory model.

Reproduces the paper's Figure 1(b) and section 2.2 observations:

* memory use is constant within a stage during training, so every bubble
  of a stage offers the same available memory;
* later stages hold fewer in-flight activations (1F1B keeps
  ``min(M, S - stage)`` micro-batches resident), so available memory rises
  from stage 0 (<3 GB at 3.6B) to stage 3 (>20 GB);
* larger models leave less available memory overall (Figure 2a).
"""

from __future__ import annotations

import numpy as np

from repro import calibration
from repro.errors import PipelineError
from repro.pipeline.config import ModelConfig


class MemoryModel:
    """Memory footprint of one pipeline-training configuration."""

    def __init__(self, model: ModelConfig, num_stages: int, micro_batches: int,
                 gpu_memory_gb: float = calibration.SERVER_I_GPU_MEMORY_GB):
        self.model = model
        self.num_stages = num_stages
        self.micro_batches = micro_batches
        self.gpu_memory_gb = gpu_memory_gb
        anchors = sorted(calibration.ACTIVATION_GB_PER_MICRO_BATCH.items())
        sizes = np.array([size for size, _gb in anchors])
        gbs = np.array([gb for _size, gb in anchors])
        self.activation_gb_per_micro_batch = float(
            np.interp(model.params_billion, sizes, gbs)
        )

    @property
    def weights_optimizer_gb(self) -> float:
        """Weights + gradients + Adam state per stage."""
        total_bytes = self.model.params_billion * 1e9 * calibration.BYTES_PER_PARAM
        return total_bytes / self.num_stages / 1e9

    def in_flight_micro_batches(self, stage: int) -> int:
        """Activations resident at ``stage`` under 1F1B at peak."""
        self._check_stage(stage)
        return min(self.micro_batches, self.num_stages - stage)

    def stage_memory_gb(self, stage: int) -> float:
        """Total training memory pinned on the GPU of ``stage``."""
        activations = (
            self.in_flight_micro_batches(stage) * self.activation_gb_per_micro_batch
        )
        used = self.weights_optimizer_gb + activations
        if used > self.gpu_memory_gb:
            raise PipelineError(
                f"stage {stage} needs {used:.1f} GB but the GPU has "
                f"{self.gpu_memory_gb:.0f} GB; reduce the model or micro-batches"
            )
        return used

    def available_gb(self, stage: int) -> float:
        """Memory a bubble on ``stage`` can offer to side tasks."""
        return self.gpu_memory_gb - self.stage_memory_gb(stage)

    def per_stage_summary(self) -> list[dict]:
        """One row per stage: used / available, for Figure 1(b)."""
        return [
            {
                "stage": stage,
                "used_gb": self.stage_memory_gb(stage),
                "available_gb": self.available_gb(stage),
            }
            for stage in range(self.num_stages)
        ]

    def _check_stage(self, stage: int) -> None:
        if not 0 <= stage < self.num_stages:
            raise PipelineError(
                f"stage {stage} out of range [0, {self.num_stages})"
            )
