"""Static per-stage op orders for the supported pipeline schedules.

``1f1b``
    PipeDream-flush, DeepSpeed's default: each stage runs
    ``min(M, S - stage - 1)`` warm-up forwards, then alternates one forward
    with one backward, then drains the remaining backwards. This is the
    schedule whose bubbles the paper characterizes.
``gpipe``
    all forwards then all backwards; kept as an ablation — it produces the
    same inter-epoch (Type-A) bubbles but different in-epoch behaviour.
"""

from __future__ import annotations

import enum

from repro.errors import PipelineError
from repro.pipeline.ops import Op, OpKind


class ScheduleKind(enum.Enum):
    ONE_F_ONE_B = "1f1b"
    GPIPE = "gpipe"


def stage_order(
    kind: ScheduleKind | str, stage: int, num_stages: int, micro_batches: int
) -> list[Op]:
    """The static op order one stage executes within an epoch."""
    if isinstance(kind, str):
        kind = ScheduleKind(kind)
    if not 0 <= stage < num_stages:
        raise PipelineError(f"stage {stage} out of range [0, {num_stages})")
    if kind is ScheduleKind.ONE_F_ONE_B:
        return _one_f_one_b(stage, num_stages, micro_batches)
    return _gpipe(stage, micro_batches)


def _one_f_one_b(stage: int, num_stages: int, micro_batches: int) -> list[Op]:
    warmup = min(micro_batches, num_stages - stage - 1)
    order: list[Op] = []
    forward = backward = 0
    for _ in range(warmup):
        order.append(Op(stage, forward, OpKind.FORWARD))
        forward += 1
    while forward < micro_batches:
        order.append(Op(stage, forward, OpKind.FORWARD))
        forward += 1
        order.append(Op(stage, backward, OpKind.BACKWARD))
        backward += 1
    while backward < micro_batches:
        order.append(Op(stage, backward, OpKind.BACKWARD))
        backward += 1
    return order


def _gpipe(stage: int, micro_batches: int) -> list[Op]:
    forwards = [Op(stage, m, OpKind.FORWARD) for m in range(micro_batches)]
    backwards = [Op(stage, m, OpKind.BACKWARD) for m in range(micro_batches)]
    return forwards + backwards
