"""Durations of pipeline operations.

Forward/backward times per micro-batch are interpolated from the
calibrated anchors in :mod:`repro.calibration` (fitted to the paper's
Figure 2); BP = 2x FP reproduces the paper's Type-C bubble duration of one
FP time. A per-epoch optimizer phase proportional to the parameter count
gives the gentle bubble-rate decline from 42.4% (1.2B) to ~40.4% (6B).
"""

from __future__ import annotations

import numpy as np

from repro import calibration
from repro.pipeline.config import ModelConfig
from repro.pipeline.ops import Op, OpKind
from repro.sim.rng import RandomStreams


class TimingModel:
    """Op-duration model for one model size."""

    def __init__(self, model: ModelConfig, jitter: float = 0.0,
                 rng: RandomStreams | None = None):
        self.model = model
        self.jitter = jitter
        self.rng = rng or RandomStreams(0)
        anchors = sorted(calibration.FP_TIME_BY_MODEL_B.items())
        sizes = np.array([size for size, _time in anchors])
        times = np.array([time for _size, time in anchors])
        self._fp_time = float(np.interp(model.params_billion, sizes, times))

    @property
    def fp_time(self) -> float:
        """Mean forward-propagation time per micro-batch (seconds)."""
        return self._fp_time

    @property
    def bp_time(self) -> float:
        """Mean backward-propagation time per micro-batch (seconds)."""
        return self._fp_time * calibration.BP_OVER_FP_RATIO

    @property
    def optimizer_time(self) -> float:
        """Per-epoch optimizer/synchronization time per stage (seconds)."""
        return calibration.OPTIMIZER_TIME_PER_BILLION * self.model.params_billion

    def op_duration(self, op: Op) -> float:
        """Sampled duration for one op (with jitter when configured)."""
        mean = self.fp_time if op.kind is OpKind.FORWARD else self.bp_time
        if self.jitter <= 0:
            return mean
        return self.rng.jitter(f"op:{op.stage}", mean, self.jitter)

    def ideal_epoch_time(self, num_stages: int, micro_batches: int) -> float:
        """Analytic epoch duration for the 1F1B schedule (no jitter).

        ``(M + S - 1) * (t_f + t_b) + t_opt`` — the pipeline fills and
        drains over ``S - 1`` extra micro-batch slots.
        """
        slots = micro_batches + num_stages - 1
        return slots * (self.fp_time + self.bp_time) + self.optimizer_time

    def ideal_bubble_rate(self, num_stages: int, micro_batches: int) -> float:
        """Analytic per-stage bubble fraction for 1F1B.

        ``(S - 1)(t_f + t_b) / epoch`` — 42.9% for S=4, M=4 before the
        optimizer phase, matching the paper's measured 42.4%.
        """
        bubble = (num_stages - 1) * (self.fp_time + self.bp_time)
        return bubble / self.ideal_epoch_time(num_stages, micro_batches)
