"""FreeRide reproduction: harvesting bubbles in pipeline parallelism.

Public API (stable):

* :class:`repro.sim.Engine` — the discrete-event simulation clock.
* :mod:`repro.gpu` — the simulated multi-GPU server substrate.
* :mod:`repro.pipeline` — the DeepSpeed-like pipeline-training engine.
* :mod:`repro.core` — the FreeRide middleware (the paper's contribution).
* :mod:`repro.workloads` — the six evaluation side tasks.
* :mod:`repro.baselines` — MPS / naive co-location and dedicated runs.
* :mod:`repro.metrics` — time increase ``I`` and cost savings ``S``.
* :mod:`repro.api` — the declarative scenario/session API: ScenarioSpec,
  Session/Runner, the experiment registry, and artifact export.
* :mod:`repro.experiments` — one registered scenario per table/figure.

See README.md for a quickstart, API.md for the scenario/session API,
and DESIGN.md for the architecture.
"""

__version__ = "1.1.0"
