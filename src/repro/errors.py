"""Exception hierarchy for the FreeRide reproduction.

Every package raises errors derived from :class:`ReproError` so callers can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation is driven incorrectly."""


class GpuError(ReproError):
    """Base class for errors raised by the simulated GPU substrate."""


class GpuOutOfMemoryError(GpuError):
    """A process exceeded its GPU memory allocation or limit.

    Mirrors the CUDA out-of-memory error that MPS raises for the offending
    process only (paper section 4.5): the failing process dies, other
    processes on the device are unaffected.
    """

    def __init__(self, message: str, requested_gb: float = 0.0, limit_gb: float = 0.0):
        super().__init__(message)
        self.requested_gb = requested_gb
        self.limit_gb = limit_gb


class ProcessKilledError(GpuError):
    """The simulated process received SIGKILL."""


class PipelineError(ReproError):
    """Raised on invalid pipeline-training configuration or scheduling."""


class SideTaskError(ReproError):
    """Base class for side-task failures."""


class IllegalTransitionError(SideTaskError):
    """A state transition not permitted by the FreeRide state machine.

    The message names the offending task (when known), the state it is
    in, and the transition that was attempted — the three facts needed
    to debug a life-cycle bug from a log line alone.
    """

    def __init__(self, current: str, requested: str, task_id: str = ""):
        task = f" for task {task_id!r}" if task_id else ""
        super().__init__(
            f"illegal side-task transition{task}: "
            f"{requested} is not legal from state {current}"
        )
        self.current = current
        self.requested = requested
        self.task_id = task_id


class TaskRejectedError(SideTaskError):
    """Algorithm 1 rejected a side task (no worker has enough GPU memory).

    Carries the context a caller needs to act on the rejection: which
    assignment policy said no, how many workers were eligible, and how
    deep the submission queue was at the time (0 for the batch path,
    which has no queue). The message embeds all of it.
    """

    def __init__(self, message: str, task_name: str = "",
                 policy: str = "", queue_depth: int = 0,
                 eligible_workers: int = 0):
        super().__init__(message)
        self.task_name = task_name
        self.policy = policy
        self.queue_depth = queue_depth
        self.eligible_workers = eligible_workers


class RetryExhaustedError(SideTaskError):
    """Every allowed attempt of a retried operation failed.

    Mirrors :class:`TaskRejectedError`: carries the context a caller
    needs to act — which task, how many attempts were made, and the last
    failure observed — with the message embedding all of it.
    """

    def __init__(self, message: str, task_name: str = "",
                 attempts: int = 0, last_failure: str = ""):
        super().__init__(message)
        self.task_name = task_name
        self.attempts = attempts
        self.last_failure = last_failure


class RpcError(ReproError):
    """An RPC could not be delivered (e.g. the peer is gone)."""


class SpecError(ReproError):
    """An invalid scenario spec: unknown field, bad override path, or a
    value outside the declarative API's vocabulary."""


class SweepConfigError(ReproError):
    """Invalid sweep-executor configuration: a garbage or non-positive
    ``REPRO_SWEEP_WORKERS``, an unknown ``REPRO_SWEEP_BACKEND``, or a
    queue backend selected without a database path."""


class DistribError(ReproError):
    """The distributed sweep control plane was driven incorrectly or hit
    an unrecoverable condition: an unserializable point function, a
    fingerprint mismatch on resume, a lost/illegal task transition, or a
    sweep whose points exhausted their attempts (DEAD)."""


class SessionError(ReproError):
    """A :class:`repro.api.session.Session` was driven out of order
    (results before run, submit after run, reconfigure mid-flight)."""
