"""Benchmark: regenerate Table 2 (time increase / cost savings, 4 methods).

The headline result: FreeRide's iterative interface costs about 1% of
training time and saves money; the imperative interface costs a little
more; raw MPS and naive co-location cost tens of percent and mostly lose
money — with Graph SGD under MPS as the pathological case.
"""

from __future__ import annotations

import statistics

from repro.experiments import table2


def test_table2(benchmark, record_output):
    data = benchmark.pedantic(
        lambda: table2.run_spec(table2.default_spec()),
        rounds=1, iterations=1)
    record_output("table2", table2.render(data))
    cells = {(cell.task, cell.method): cell for cell in data["cells"]}
    tasks = [cell.task for cell in data["cells"] if cell.method == "iterative"]

    # Iterative: ~1% overhead, positive savings for every task.
    for task in tasks:
        iterative = cells[(task, "iterative")]
        assert iterative.time_increase < 0.03, task
        assert iterative.cost_savings > 0, task

    # Imperative: higher overhead than iterative, still far below MPS.
    for task in tasks:
        assert cells[(task, "imperative")].time_increase >= \
            cells[(task, "iterative")].time_increase - 0.005, task
        assert cells[(task, "imperative")].time_increase < \
            cells[(task, "mps")].time_increase, task

    # Baselines: big overheads; naive worse than MPS except Graph SGD.
    for task in tasks:
        assert cells[(task, "mps")].time_increase > 0.05, task
        assert cells[(task, "naive")].time_increase > 0.3, task

    # The Graph SGD anomaly: >100% time increase under MPS (paper: 231%).
    assert cells[("graph_sgd", "mps")].time_increase > 1.0

    # Naive co-location loses money on every task (paper: -9% to -44%).
    for task in tasks:
        assert cells[(task, "naive")].cost_savings < 0, task

    # Averages in the right bands (paper: iterative 1.1% / 7.8%).
    mean_iter_i = statistics.fmean(
        cells[(task, "iterative")].time_increase for task in tasks
    )
    mean_iter_s = statistics.fmean(
        cells[(task, "iterative")].cost_savings for task in tasks
    )
    assert mean_iter_i < 0.02
    assert 0.03 < mean_iter_s < 0.15

    # Mixed workload: positive savings, ~1% overhead (paper: 10.1% / 1.1%).
    mixed = cells[("mixed", "iterative")]
    assert mixed.time_increase < 0.03
    assert mixed.cost_savings > 0.04
