"""Benchmark: regenerate Figure 7 (sensitivity studies)."""

from __future__ import annotations

from repro.experiments import fig7


def test_fig7_batch_sizes(benchmark, record_output):
    points = benchmark.pedantic(fig7.batch_sweep, (fig7.default_spec(),),
                                rounds=1, iterations=1)
    record_output(
        "fig7_batch",
        fig7._sweep_table("Figure 7(a,b): varying side-task batch size",
                          points, "batch"),
    )
    # Time increase stays around 1% at every batch size (paper 7a).
    assert all(point.time_increase < 0.03 for point in points)
    # Savings are positive wherever Server-II can host the config.
    assert all(point.cost_savings > 0 for point in points if not point.oom)
    # OOM cells exist: VGG19 at batch 96/128 exceeds Server-II's 10 GB.
    oom = {(p.task, p.x) for p in points if p.oom}
    assert ("vgg19", 96) in oom and ("vgg19", 128) in oom
    assert ("resnet18", 128) not in oom


def test_fig7_model_sizes(benchmark, record_output):
    points = benchmark.pedantic(fig7.model_size_sweep,
                                (fig7.default_spec(),),
                                rounds=1, iterations=1)
    record_output(
        "fig7_model",
        fig7._sweep_table("Figure 7(c,d): varying model size", points,
                          "model"),
    )
    assert all(point.time_increase < 0.03 for point in points)
    by_task = {}
    for point in points:
        by_task.setdefault(point.task, {})[point.x] = point.cost_savings
    # Larger models leave shorter bubbles: savings shrink 1.2B -> 6B
    # for most tasks (paper 7d shows the same downward trend).
    falling = sum(
        1 for task, series in by_task.items()
        if series["6B"] < series["1.2B"]
    )
    assert falling >= 4


def test_fig7_micro_batches(benchmark, record_output):
    points = benchmark.pedantic(fig7.micro_batch_sweep,
                                (fig7.default_spec(),),
                                rounds=1, iterations=1)
    record_output(
        "fig7_micro",
        fig7._sweep_table("Figure 7(e,f): varying micro-batch number",
                          points, "micro-batches"),
    )
    assert all(point.time_increase < 0.03 for point in points)
    by_task = {}
    for point in points:
        by_task.setdefault(point.task, {})[point.x] = point.cost_savings
    # More micro-batches -> lower bubble rate -> lower savings (paper 7f).
    for task, series in by_task.items():
        assert series[8] < series[4], task
