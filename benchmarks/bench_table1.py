"""Benchmark: regenerate Table 1 (throughput vs dedicated platforms)."""

from __future__ import annotations

from repro.experiments import table1


def test_table1(benchmark, record_output):
    data = benchmark.pedantic(
        lambda: table1.run_spec(table1.default_spec()),
        rounds=1, iterations=1)
    record_output("table1", table1.render(data))
    rows = {row.name: row for row in data["rows"]}
    # Paper: 1.06-2.82x a standalone Server-II, 7-59.9x the CPU server.
    for row in rows.values():
        assert 1.0 <= row.speedup_vs_server_ii <= 3.2, row
        assert 5.0 <= row.speedup_vs_cpu <= 70.0, row
    # PageRank and Graph SGD benefit most vs Server-II (paper Table 1).
    assert rows["pagerank"].speedup_vs_server_ii > rows["resnet18"].speedup_vs_server_ii
    assert rows["graph_sgd"].speedup_vs_server_ii > rows["vgg19"].speedup_vs_server_ii
