"""Benchmark: the multi-job cluster sweep (one shared manager, N jobs).

A reduced slice of the registered `cluster` scenario — job count 1/2/3
under least-loaded assignment with the single-task mix — so the
baseline tracks a small cluster point without the full jobs x policy x
mix product.
"""

from __future__ import annotations

from repro.api import registry

REDUCED_SWEEP = {
    "sweep.axes": {
        "jobs": [1, 2, 3],
        "policy.assignment": ["least_loaded"],
        "workloads": [[{"name": "pagerank"}]],
    },
}


def _run():
    return registry.run("cluster", overrides=REDUCED_SWEEP)


def test_cluster(benchmark, record_output):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_output("cluster", result.render())
    rows = result.data["rows"]
    assert [row["jobs"] for row in rows] == [1, 2, 3]
    # The pool scales linearly with job count...
    assert [row["workers"] for row in rows] == [4, 8, 12]
    # ...and so does the harvested work, at roughly flat utilization.
    assert rows[2]["total_units"] > 2.5 * rows[0]["total_units"]
    for row in rows:
        assert 0.5 < row["utilization"] < 1.0
        assert row["mean_time_increase"] < 0.03
