"""Benchmark: observability overhead, tracing off vs on.

The tentpole constraint is that the instrumentation seams are
near-free when tracing is disabled (every seam is one ``trace.enabled``
check) and cheap when enabled (emission is a list append plus a clock
read). This benchmark runs one serving point both ways and records the
ratio; the enabled-path budget is asserted here, and the disabled path
is covered by ``bench_serve``'s wall time against the committed
baseline (``scripts/perf_guard.py``).
"""

from __future__ import annotations

import statistics
import time

from repro.api.session import Session
from repro.experiments import common, serve

#: repeats per mode; medians damp scheduler noise
ROUNDS = 5
#: enabled-path budget from the issue (<=15%), with headroom for CI
#: machine variance — the median ratio on a quiet machine is ~1.00-1.05
ENABLED_BUDGET = 1.30


def _point(trace: bool):
    spec = serve.default_spec().override({
        "sweep.axes": {
            "arrivals.rate_per_s": [4.0],
            "policy.admission": ["always"],
            "policy.assignment": ["least_loaded"],
        },
    })
    t_no = common.baseline_time(spec.train_config())
    horizon_s = t_no * float(spec.param("open_fraction"))
    point = spec.sweep_points({"params.horizon_s": horizon_s,
                               "params.t_no": t_no})[0]
    return point.override({"obs.trace": trace})


def _run(spec) -> float:
    start = time.perf_counter()
    Session(spec).run().results()
    return time.perf_counter() - start


def test_obs_overhead(benchmark, record_output):
    off_spec, on_spec = _point(trace=False), _point(trace=True)
    # Warm the workload/baseline caches outside the timed region so
    # both modes measure pure simulation.
    _run(off_spec)

    def measure():
        # Interleave the modes so clock drift and CI noisy neighbors
        # hit both medians equally.
        offs, ons = [], []
        for _ in range(ROUNDS):
            offs.append(_run(off_spec))
            ons.append(_run(on_spec))
        return statistics.median(offs), statistics.median(ons)

    off_s, on_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = on_s / off_s if off_s > 0 else 1.0

    spans = Session(on_spec).run().runner.trace_result.span_count
    record_output(
        "obs_overhead",
        "observability overhead (one serve point, median of "
        f"{ROUNDS} rounds)\n"
        f"  tracing off: {off_s * 1000:7.1f} ms\n"
        f"  tracing on:  {on_s * 1000:7.1f} ms  ({spans} events)\n"
        f"  ratio:       {ratio:7.2f}x  (budget {ENABLED_BUDGET:.2f}x)",
    )
    assert spans > 0
    assert ratio <= ENABLED_BUDGET, (
        f"tracing-enabled overhead {ratio:.2f}x exceeds the "
        f"{ENABLED_BUDGET:.2f}x budget"
    )
