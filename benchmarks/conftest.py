"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures, prints
the paper-like rendering, and writes it under ``benchmarks/out/`` so the
results can be diffed against EXPERIMENTS.md. Runs are deterministic, so
a single benchmark round is meaningful; the benchmark timer measures the
full experiment (simulation + analysis).
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def record_output(out_dir):
    def _record(name: str, text: str) -> None:
        (out_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record
