"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures, prints
the paper-like rendering, and writes it under ``benchmarks/out/`` so the
results can be diffed against EXPERIMENTS.md. Runs are deterministic, so
a single benchmark round is meaningful; the benchmark timer measures the
full experiment (simulation + analysis).

Every benchmark also writes ``benchmarks/out/BENCH_<name>.json`` with its
wall time and simulation-event throughput, so the performance trajectory
is tracked across PRs — ``scripts/perf_guard.py`` compares these records
against the committed ``benchmarks/baseline.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.sim import engine as sim_engine

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def record_output(out_dir):
    def _record(name: str, text: str) -> None:
        (out_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record


def _clear_experiment_caches() -> None:
    """Cold-start each benchmark so BENCH_*.json records are comparable
    regardless of which benchmarks ran earlier in the session."""
    from repro.experiments import common
    from repro.pipeline import engine as pipeline_engine
    from repro.workloads import (
        datasets,
        graph_analytics,
        image_processing,
        model_training,
    )

    common.run_replicated.cache_clear()
    common._baseline_cached.cache_clear()
    pipeline_engine._profile_bubbles_cached.cache_clear()
    graph_analytics._PAGERANK_TRAJECTORIES.clear()
    graph_analytics._GRAPH_SGD_TRAJECTORIES.clear()
    model_training._SGD_TRAJECTORIES.clear()
    image_processing._OUTPUT_CACHE.clear()
    datasets._cached_power_law_graph.cache_clear()
    datasets._cached_image_pool.cache_clear()
    datasets.SyntheticClassificationData.generate.cache_clear()
    datasets.SyntheticRatings.generate.cache_clear()


@pytest.fixture(autouse=True)
def bench_timing(request, out_dir):
    """Record wall time, events/sec and peak RSS for every benchmark.

    Event counts cover the engines of this process plus the deltas that
    parallel sweep workers report back through ``experiments.common``.
    ``peak_rss_bytes`` is the *process-lifetime* high-water mark at the
    benchmark's end — monotone across a session, so it bounds (rather
    than isolates) each benchmark's footprint; per-tier isolation is
    what ``bench_scale``'s fresh subprocesses are for.
    """
    from repro.serving.scale import peak_rss_bytes

    _clear_experiment_caches()
    events_before = sim_engine.total_events_processed()
    start = time.perf_counter()
    yield
    wall_s = time.perf_counter() - start
    events = sim_engine.total_events_processed() - events_before
    name = request.node.name
    payload = {
        "benchmark": name,
        "wall_s": round(wall_s, 6),
        "events": events,
        "events_per_s": round(events / wall_s) if wall_s > 0 else 0,
        "peak_rss_bytes": peak_rss_bytes(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    (out_dir / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
