"""Benchmark: regenerate Figure 8 (GPU resource limit demonstrations)."""

from __future__ import annotations

import pytest

from repro.experiments import fig8


def test_fig8(benchmark, record_output):
    data = benchmark.pedantic(
        lambda: fig8.run_spec(fig8.default_spec()),
        rounds=1, iterations=1)
    record_output("fig8", fig8.render(data))

    time_limit = data["time_limit"]
    # The runaway task is killed roughly one grace period after the
    # bubble's end (Figure 8a).
    assert time_limit["killed_at_s"] is not None
    assert time_limit["killed_at_s"] == pytest.approx(
        time_limit["bubble_end_s"] + time_limit["grace_period_s"], abs=0.15
    )
    assert "time limit" in time_limit["kill_reason"]
    # After the kill the side task's SM occupancy is zero.
    tail = [occ for t, occ in time_limit["occupancy"]
            if t > time_limit["killed_at_s"]]
    assert all(occ == 0.0 for occ in tail)

    memory_limit = data["memory_limit"]
    # The leaking task dies at its 8 GB cap and never exceeds it (8b).
    assert memory_limit["killed"]
    assert "OOM" in memory_limit["kill_reason"]
    assert memory_limit["peak_gb"] <= memory_limit["cap_gb"] + 1e-6
    assert memory_limit["memory"][-1][1] == 0.0
