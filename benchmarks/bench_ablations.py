"""Benchmark: ablations of FreeRide's design choices (DESIGN.md section 7)."""

from __future__ import annotations

from repro.experiments import ablations


def test_grace_period_ablation(benchmark, record_output):
    rows = benchmark.pedantic(ablations.grace_sweep,
                              (ablations.default_spec(),),
                              rounds=1, iterations=1)
    record_output("ablation_grace", str(rows))
    # Every grace period eventually kills the runaway task...
    assert all(row["killed"] for row in rows)
    # ...and the trespass time grows with the grace period.
    trespass = [row["trespass_s"] for row in rows]
    assert trespass == sorted(trespass)
    for row in rows:
        assert row["trespass_s"] >= row["grace_s"] - 0.05


def test_rpc_latency_ablation(benchmark, record_output):
    rows = benchmark.pedantic(ablations.rpc_latency_sweep,
                              (ablations.default_spec(),),
                              rounds=1, iterations=1)
    record_output("ablation_rpc", str(rows))
    # Slower RPCs harvest less work.
    assert rows[0]["units"] >= rows[-1]["units"]
    # Overhead stays low across two orders of magnitude of latency.
    assert all(row["time_increase"] < 0.05 for row in rows)


def test_policy_ablation(benchmark, record_output):
    rows = benchmark.pedantic(ablations.policy_sweep,
                              (ablations.default_spec(),),
                              rounds=1, iterations=1)
    record_output("ablation_policy", str(rows))
    by_name = {row["policy"]: row for row in rows}
    # The paper's least-loaded rule spreads tasks across workers...
    assert by_name["least_loaded"]["distinct_workers"] >= 3
    # ...while best-fit packs them more tightly.
    assert (by_name["best_fit"]["distinct_workers"]
            <= by_name["least_loaded"]["distinct_workers"])


def test_step_granularity_ablation(benchmark, record_output):
    rows = benchmark.pedantic(ablations.granularity_sweep,
                              (ablations.default_spec(),),
                              rounds=1, iterations=1)
    record_output("ablation_step", str(rows))
    # Finer steps -> more interface overhead; coarser -> more bubble-tail
    # waste (Figure 9's PageRank-vs-SGD effect, made explicit).
    assert rows[0]["overhead_s"] > rows[-1]["overhead_s"]
    assert rows[-1]["insufficient_s"] > rows[0]["insufficient_s"]


def test_schedule_ablation(benchmark, record_output):
    rows = benchmark.pedantic(ablations.schedule_sweep,
                              (ablations.default_spec(),),
                              rounds=1, iterations=1)
    record_output("ablation_schedule", str(rows))
    by_name = {row["schedule"]: row for row in rows}
    # Both schedules leave large bubbles; 1F1B is what the paper measures.
    assert 0.35 < by_name["1f1b"]["bubble_rate"] < 0.45
    assert by_name["gpipe"]["bubble_rate"] > 0.3
