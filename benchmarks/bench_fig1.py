"""Benchmark: regenerate Figure 1 (pipeline epoch + memory utilization)."""

from __future__ import annotations

from repro.experiments import fig1


def test_fig1(benchmark, record_output):
    data = benchmark.pedantic(
        lambda: fig1.run_spec(fig1.default_spec()),
        rounds=1, iterations=1)
    record_output("fig1", fig1.render(data))
    stages = {row["stage"]: row for row in data["stages"]}
    # The paper's Figure 1 annotations, verbatim.
    assert stages[0]["pattern"] == "B C C C"
    assert stages[1]["pattern"] == "A B C C A"
    assert set(stages[3]["pattern"].split()) == {"A"}
    # Memory: used falls / available rises from stage 0 to 3.
    used = [stages[s]["used_gb"] for s in range(4)]
    assert used == sorted(used, reverse=True)
    assert stages[0]["available_gb"] <= 3.0 + 1e-6
    assert stages[3]["available_gb"] > 20.0
