"""Benchmark: regenerate Figure 9 (bubble time breakdown)."""

from __future__ import annotations

from repro.experiments import fig9


def test_fig9(benchmark, record_output):
    data = benchmark.pedantic(
        lambda: fig9.run_spec(fig9.default_spec()),
        rounds=1, iterations=1)
    record_output("fig9", fig9.render(data))
    rows = {row["task"]: row for row in data["rows"]}

    # Buckets are fractions that account for (almost) all bubble time.
    for task, row in rows.items():
        total = (row["running"] + row["freeride_runtime"]
                 + row["insufficient_time"] + row["no_task_oom"])
        assert 0.9 <= total <= 1.01, task

    # VGG19 and Image cannot use stages 0-1: about half the bubble time
    # is "No side task: OOM" (paper section 6.5).
    for task in ("vgg19", "image"):
        assert rows[task]["no_task_oom"] > 0.35, task
    for task in ("resnet18", "pagerank"):
        assert rows[task]["no_task_oom"] == 0.0, task

    # Short-step tasks pay proportionally more FreeRide runtime than
    # long-step tasks lose... and long-step tasks lose more to
    # insufficient tails (the PageRank vs Graph SGD contrast).
    assert rows["pagerank"]["freeride_runtime"] > rows["graph_sgd"]["freeride_runtime"]
    assert rows["graph_sgd"]["insufficient_time"] > rows["pagerank"]["insufficient_time"]

    # Most usable bubble time is actually used (paper: "Most of the
    # bubble time with enough available GPU memory size is used").
    assert rows["resnet18"]["running"] > 0.5
