"""Benchmark: regenerate Figure 2 (bubble statistics vs model size)."""

from __future__ import annotations

from repro.experiments import fig2


def test_fig2(benchmark, record_output):
    data = benchmark.pedantic(
        lambda: fig2.run_spec(fig2.default_spec()),
        rounds=1, iterations=1)
    record_output("fig2", fig2.render(data))
    rows = {row["model"]: row for row in data["by_model"]}
    # Bubble rate: 42.4% at 1.2B, falling only slightly to ~40% at 6B.
    assert abs(rows["1.2B"]["bubble_rate"] - 0.424) < 0.01
    assert rows["6B"]["bubble_rate"] < rows["1.2B"]["bubble_rate"]
    assert rows["1.2B"]["bubble_rate"] - rows["6B"]["bubble_rate"] < 0.05
    # Micro-batch 8 drops the rate to about 26.2%.
    assert abs(data["micro_batch_8"]["bubble_rate"] - 0.262) < 0.02
    # Epoch time and bubble time both fall with model size (Figure 2b).
    for series in ("epoch_time_s", "bubble_time_s"):
        values = [rows[m][series] for m in ("1.2B", "3.6B", "6B")]
        assert values == sorted(values, reverse=True)
    # Larger models leave less available bubble memory (Figure 2a).
    avail = {
        model: max(point[1] for point in rows[model]["points"])
        for model in rows
    }
    assert avail["6B"] < avail["3.6B"] < avail["1.2B"]
