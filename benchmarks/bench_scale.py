"""Benchmark: the serving scale ladder (events/s + peak RSS per tier).

Runs ``python -m repro.serving.scale`` at 10^5, 10^6 and 10^7 offered
requests — each tier in a **fresh subprocess**, because peak RSS is a
process-lifetime high-water mark and would otherwise be smeared across
tiers. The per-tier JSON digests land in ``benchmarks/out/
scale_ladder.json`` and the rendered table in ``scale_ladder.txt``.

The ladder's point is the RSS column: in streaming metrics mode, memory
must *not* scale with the request count (constant-memory sketches +
chunked arrival generation + settled-record dropping), so the 10^6 tier
is asserted to stay within 1.5x of the 10^5 tier's peak RSS.

Set ``REPRO_SCALE_TIERS`` (comma-separated request counts) to trim the
ladder — CI smoke runs only the 10^5 tier; the full 10^7 rung takes a
few minutes and is meant for the reference machine.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

from repro.sim.engine import add_foreign_events

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_TIERS = (100_000, 1_000_000, 10_000_000)


def _tiers() -> tuple[int, ...]:
    spec = os.environ.get("REPRO_SCALE_TIERS", "").strip()
    if not spec:
        return DEFAULT_TIERS
    return tuple(int(field) for field in spec.replace(",", " ").split())


def _run_tier(requests: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")] + env.get("PYTHONPATH", "").split(os.pathsep))
    completed = subprocess.run(
        [sys.executable, "-m", "repro.serving.scale",
         "--requests", str(requests), "--json"],
        capture_output=True, text=True, check=True, env=env,
    )
    return json.loads(completed.stdout)


def _render(rows: list[dict]) -> str:
    lines = [
        "serving scale ladder (streaming metrics, vectorized arrivals)",
        f"{'requests':>10}  {'events':>10}  {'events/s':>10}  "
        f"{'peak RSS':>9}  {'wait p99':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['offered']:>10,}  {row['events']:>10,}  "
            f"{row['events_per_s']:>10,.0f}  "
            f"{row['peak_rss_bytes'] / 1e6:>7.1f}MB  "
            f"{row['wait']['p99']:>8.4f}s"
        )
    return "\n".join(lines)


def test_scale_ladder(record_output, out_dir):
    rows = [_run_tier(requests) for requests in _tiers()]
    for row in rows:
        # The tiers ran in subprocesses; fold their event counts into
        # this process's total so BENCH_test_scale_ladder.json reports
        # real ladder throughput instead of zero events.
        add_foreign_events(row["events"])

    (out_dir / "scale_ladder.json").write_text(
        json.dumps(rows, indent=2) + "\n")
    record_output("scale_ladder", _render(rows))

    by_requests = {row["requests"]: row for row in rows}
    for row in rows:
        assert row["completed"] > 0.9 * row["requests"]
    # Flat-RSS contract: 10x the requests must not grow resident memory
    # beyond measurement noise (subprocesses start from identical state).
    small = by_requests.get(100_000)
    for tier in (1_000_000, 10_000_000):
        big = by_requests.get(tier)
        if small and big:
            assert big["peak_rss_bytes"] <= 1.5 * small["peak_rss_bytes"], (
                f"peak RSS grew {big['peak_rss_bytes'] / small['peak_rss_bytes']:.2f}x "
                f"from 10^5 to {tier} requests; streaming mode should be flat"
            )
