"""Benchmark: the online serving capacity sweep (`freeride serve`)."""

from __future__ import annotations

from repro.experiments import serve


def test_serve(benchmark, record_output):
    data = benchmark.pedantic(
        lambda: serve.run_spec(serve.default_spec()),
        rounds=1, iterations=1)
    record_output("serve", serve.render(data))

    rows = data["rows"]
    assert len(rows) == (len(serve.ARRIVAL_RATES) * len(serve.ADMISSIONS)
                         * len(serve.POLICIES))
    by_key = {(row["rate"], row["admission"], row["policy"]): row
              for row in rows}
    top_rate = max(serve.ARRIVAL_RATES)

    # Offered load is open-loop: identical across policy pairs at a rate.
    for rate in serve.ARRIVAL_RATES:
        offered = {row["offered"] for row in rows if row["rate"] == rate}
        assert len(offered) == 1

    # At saturation, token-bucket admission sheds far more load than
    # always-admit, and in exchange bounds completion latency.
    always = by_key[(top_rate, "always", "least_loaded")]
    bucket = by_key[(top_rate, "token_bucket", "least_loaded")]
    assert bucket["rejection_rate"] > always["rejection_rate"] + 0.3
    assert bucket["completion_p95"] < always["completion_p95"]
    # Everything the bucket admits completes within its SLO.
    assert bucket["slo_met"] == bucket["completed"]

    # Serving side tasks must not slow training measurably (paper's I).
    assert all(row["time_increase"] < 0.05 for row in rows)
